//! A hand-rolled JSON value type, emitter, and parser.
//!
//! The build environment cannot fetch `serde`, so reports are emitted
//! through this ~200-line module instead. It supports exactly the JSON
//! data model: the emitter escapes strings per RFC 8259, integers
//! round-trip exactly (`i64`/`u64` are kept out of floating point), and
//! the parser exists so tests and `scripts/verify.sh` can validate what
//! the pipeline emits without external tooling.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Signed integer, emitted without a decimal point.
    Int(i64),
    /// Unsigned integer beyond `i64::MAX` still round-trips exactly.
    UInt(u64),
    /// Finite float (non-finite values emit as `null`).
    Float(f64),
    /// String (escaped on emission).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; insertion order is preserved on emission.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for objects.
    pub fn obj<K: Into<String>>(fields: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Looks up a field of an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Depth-first search for an object that has `key == value` among
    /// its string fields; used by tests to find a span by name.
    pub fn find_object_with(&self, key: &str, value: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => {
                if matches!(self.get(key), Some(Json::Str(s)) if s == value) {
                    return Some(self);
                }
                fields.iter().find_map(|(_, v)| v.find_object_with(key, value))
            }
            Json::Arr(items) => items.iter().find_map(|v| v.find_object_with(key, value)),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Int(i) if i >= 0 => Some(i as u64),
            Json::UInt(u) => Some(u),
            _ => None,
        }
    }

    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

/// Equality is structural, with numbers compared by value: `Int(3)`,
/// `UInt(3)`, and `Float(3.0)` are all equal (the parser picks the
/// narrowest representation, so round-trip tests need this).
impl PartialEq for Json {
    fn eq(&self, other: &Self) -> bool {
        use Json::*;
        match (self, other) {
            (Null, Null) => true,
            (Bool(a), Bool(b)) => a == b,
            (Str(a), Str(b)) => a == b,
            (Arr(a), Arr(b)) => a == b,
            (Obj(a), Obj(b)) => a == b,
            (Int(a), Int(b)) => a == b,
            (UInt(a), UInt(b)) => a == b,
            (Int(a), UInt(b)) | (UInt(b), Int(a)) => *a >= 0 && *a as u64 == *b,
            (Float(a), Float(b)) => a == b,
            (Int(a), Float(b)) | (Float(b), Int(a)) => *a as f64 == *b,
            (UInt(a), Float(b)) | (Float(b), UInt(a)) => *a as f64 == *b,
            _ => false,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::UInt(u) => write!(f, "{u}"),
            Json::Float(x) if x.is_finite() => {
                // Keep a decimal marker so floats re-parse as floats.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Json::Float(_) => f.write_str("null"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{08}' => f.write_str("\\b")?,
            '\u{0C}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_fmt(format_args!("{c}"))?,
        }
    }
    f.write_str("\"")
}

/// Parse failure with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    let lo_hex = self
                                        .bytes
                                        .get(self.pos + 2..self.pos + 6)
                                        .ok_or_else(|| self.err("truncated surrogate"))?;
                                    let lo_hex = std::str::from_utf8(lo_hex)
                                        .map_err(|_| self.err("non-ASCII surrogate"))?;
                                    let lo = u32::from_str_radix(lo_hex, 16)
                                        .map_err(|_| self.err("bad surrogate"))?;
                                    self.pos += 6;
                                    let combined =
                                        0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("lone surrogate"));
                                }
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar.
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(self.err("raw control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number spans are ASCII");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_and_round_trips_strings() {
        let nasty = "quote \" backslash \\ newline \n tab \t unicode é \u{1F600} ctrl \u{01}";
        let v = Json::Str(nasty.to_string());
        let emitted = v.to_string();
        assert_eq!(Json::parse(&emitted).unwrap(), v);
    }

    #[test]
    fn integers_round_trip_exactly() {
        for v in [
            Json::Int(0),
            Json::Int(-1),
            Json::Int(i64::MIN),
            Json::Int(i64::MAX),
            Json::UInt(u64::MAX),
        ] {
            let text = v.to_string();
            let back = Json::parse(&text).unwrap();
            assert_eq!(back.to_string(), text);
            match (&v, &back) {
                (Json::UInt(a), other) => assert_eq!(other.as_u64(), Some(*a)),
                (Json::Int(a), Json::Int(b)) => assert_eq!(a, b),
                _ => panic!("integer changed representation: {v:?} -> {back:?}"),
            }
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Json::obj([
            ("name", Json::Str("cycle_equiv".into())),
            ("count", Json::UInt(3)),
            (
                "children",
                Json::Arr(vec![Json::obj([("name", Json::Str("dfs".into()))])]),
            ),
            ("ratio", Json::Float(0.5)),
            ("flag", Json::Bool(true)),
            ("nothing", Json::Null),
        ]);
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn find_object_with_searches_depth_first() {
        let v = Json::obj([(
            "spans",
            Json::obj([
                ("name", Json::Str("root".into())),
                (
                    "children",
                    Json::Arr(vec![Json::obj([("name", Json::Str("cycle_equiv".into()))])]),
                ),
            ]),
        )]);
        let hit = v.find_object_with("name", "cycle_equiv").unwrap();
        assert_eq!(hit.get("name"), Some(&Json::Str("cycle_equiv".into())));
        assert!(v.find_object_with("name", "missing").is_none());
    }
}
