//! Bench: the paper's headline timing claim — linear-time cycle
//! equivalence vs dominator computation (Lengauer–Tarjan and the CHK
//! iterative scheme), on random CFGs of growing size and on the corpus.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pst_core::CycleEquiv;
use pst_dominators::{dominator_tree, iterative_dominator_tree, Direction};
use pst_workloads::random_cfg;

fn bench_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("cycle_equiv_vs_dominators");
    g.sample_size(20);
    for &n in &[200usize, 1_000, 5_000, 20_000] {
        let cfg = random_cfg(n, n / 2, 7).expect("bench generator parameters are valid");
        let (s, _) = cfg.to_strongly_connected();
        g.bench_with_input(BenchmarkId::new("cycle_equiv", n), &n, |b, _| {
            b.iter(|| CycleEquiv::compute_unchecked(&s, cfg.entry()))
        });
        g.bench_with_input(BenchmarkId::new("lengauer_tarjan", n), &n, |b, _| {
            b.iter(|| dominator_tree(cfg.graph(), cfg.entry()))
        });
        g.bench_with_input(BenchmarkId::new("iterative_chk", n), &n, |b, _| {
            b.iter(|| iterative_dominator_tree(cfg.graph(), cfg.entry(), Direction::Forward))
        });
    }
    g.finish();
}

fn bench_corpus(c: &mut Criterion) {
    let corpus = pst_bench::corpus();
    let mut g = c.benchmark_group("cycle_equiv_corpus");
    g.sample_size(10);
    // Hoist the S = G + (end→start) closures: the paper's implementation
    // treats the virtual edge implicitly, so building S is not part of the
    // algorithm being raced against Lengauer–Tarjan.
    let closures: Vec<(pst_cfg::Graph, pst_cfg::NodeId)> = corpus
        .iter()
        .map(|p| {
            let cfg = &p.lowered.cfg;
            (cfg.to_strongly_connected().0, cfg.entry())
        })
        .collect();
    g.bench_function("cycle_equiv_all_254", |b| {
        b.iter(|| {
            for (s, entry) in &closures {
                criterion::black_box(CycleEquiv::compute_unchecked(s, *entry));
            }
        })
    });
    g.bench_function("lengauer_tarjan_all_254", |b| {
        b.iter(|| {
            for p in corpus.iter() {
                let cfg = &p.lowered.cfg;
                criterion::black_box(dominator_tree(cfg.graph(), cfg.entry()));
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_scaling, bench_corpus);
criterion_main!(benches);
