//! Bench: §5 — linear-time control regions vs the O(E·N) baselines
//! (Cytron–Ferrante–Sarkar refinement, FOW set hashing).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pst_controldep::{cfs_control_regions, fow_control_regions};
use pst_core::ControlRegions;
use pst_workloads::random_cfg;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("control_regions");
    g.sample_size(15);
    for &n in &[50usize, 200, 800, 2_000] {
        let cfg = random_cfg(n, n / 2, 11).expect("bench generator parameters are valid");
        g.bench_with_input(BenchmarkId::new("linear_ours", n), &n, |b, _| {
            b.iter(|| ControlRegions::compute(&cfg))
        });
        g.bench_with_input(BenchmarkId::new("cfs_refinement", n), &n, |b, _| {
            b.iter(|| cfs_control_regions(&cfg))
        });
        g.bench_with_input(BenchmarkId::new("fow_hashing", n), &n, |b, _| {
            b.iter(|| fow_control_regions(&cfg))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
