//! Bench: §6.2 — sparse data-flow via quick propagation graphs vs the
//! full iterative solver, and the PST elimination solver.

use criterion::{criterion_group, criterion_main, Criterion};
use pst_core::{collapse_all, ProgramStructureTree};
use pst_dataflow::{
    solve_elimination_unchecked, solve_iterative, Qpg, ReachingDefinitions,
    SingleVariableReachingDefs,
};
use pst_lang::VarId;
use pst_workloads::{generate_function, ProgramGenConfig};

fn bench(c: &mut Criterion) {
    let config = ProgramGenConfig {
        target_stmts: 1_200,
        num_vars: 30,
        ..Default::default()
    };
    let f = generate_function("big", &config, 17);
    let l = pst_lang::lower_function(&f).unwrap();
    let pst = ProgramStructureTree::build(&l.cfg);
    let collapsed = collapse_all(&l.cfg, &pst);

    let mut g = c.benchmark_group("dataflow");
    g.sample_size(12);
    let rd = ReachingDefinitions::new(&l);
    g.bench_function("all_vars_iterative", |b| {
        b.iter(|| solve_iterative(&l.cfg, &rd))
    });
    g.bench_function("all_vars_elimination", |b| {
        b.iter(|| solve_elimination_unchecked(&l.cfg, &pst, &collapsed, &rd))
    });
    if pst_dataflow::derived_sequence(&l.cfg).reducible {
        g.bench_function("all_vars_intervals", |b| {
            b.iter(|| pst_dataflow::solve_intervals_unchecked(&l.cfg, &rd))
        });
    }
    let problems: Vec<SingleVariableReachingDefs> = (0..l.var_count())
        .map(|v| SingleVariableReachingDefs::new(&l, VarId::from_index(v)))
        .collect();
    g.bench_function("per_var_iterative", |b| {
        b.iter(|| {
            for p in &problems {
                criterion::black_box(solve_iterative(&l.cfg, p));
            }
        })
    });
    // The naive per-instance builder (scans the whole CFG per variable)…
    g.bench_function("per_var_qpg_naive_build", |b| {
        b.iter(|| {
            for p in &problems {
                let q = Qpg::build_unchecked(&l.cfg, &pst, p);
                criterion::black_box(q.solve_unchecked(&l.cfg, &pst, p));
            }
        })
    });
    // …vs the amortized context, which is what the paper's "marking in
    // time proportional to the marked regions" remark calls for.
    let ctx = pst_dataflow::QpgContext::new(&l.cfg, &pst).unwrap();
    g.bench_function("per_var_qpg_amortized", |b| {
        b.iter(|| {
            for p in &problems {
                let q = ctx.build_from_sites(p.sites()).unwrap();
                criterion::black_box(ctx.solve(&q, p).unwrap());
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
