//! Bench: §6.3 extensions — incremental PST maintenance vs from-scratch
//! rebuild, and parallel vs sequential PST φ-placement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pst_core::{collapse_all, insert_edge, ProgramStructureTree};
use pst_workloads::{generate_function, nested_while_loops, ProgramGenConfig};

fn bench_incremental(c: &mut Criterion) {
    let mut g = c.benchmark_group("incremental_insert");
    g.sample_size(20);
    for &depth in &[50usize, 200, 800] {
        // Deep loop nest: a self-loop on the innermost body is maximally
        // local, so the incremental path rebuilds O(1) nodes.
        let cfg = nested_while_loops(depth);
        let pst = ProgramStructureTree::build(&cfg);
        let body = pst_cfg::NodeId::from_index(depth + 1); // innermost body block
        g.bench_with_input(BenchmarkId::new("incremental", depth), &depth, |b, _| {
            b.iter(|| insert_edge(&cfg, &pst, body, body).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("full_rebuild", depth), &depth, |b, _| {
            b.iter(|| {
                let mut graph = cfg.graph().clone();
                graph.add_edge(body, body);
                let grown = pst_cfg::Cfg::from_graph(graph, cfg.entry(), cfg.exit()).unwrap();
                ProgramStructureTree::build(&grown)
            })
        });
    }
    g.finish();
}

fn bench_parallel_phi(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel_phi");
    g.sample_size(10);
    let config = ProgramGenConfig {
        target_stmts: 3_000,
        num_vars: 120,
        ..Default::default()
    };
    let f = generate_function("big", &config, 5);
    let l = pst_lang::lower_function(&f).unwrap();
    let pst = ProgramStructureTree::build(&l.cfg);
    let collapsed = collapse_all(&l.cfg, &pst);
    g.bench_function("sequential", |b| {
        b.iter(|| pst_ssa::place_phis_pst_unchecked(&l, &pst, &collapsed))
    });
    for threads in [2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::new("parallel", threads), &threads, |b, &t| {
            b.iter(|| pst_apps::place_phis_pst_parallel(&l, &pst, &collapsed, t))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_incremental, bench_parallel_phi);
criterion_main!(benches);
