//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * compact `<top, size>` bracket names (§3.5) vs the explicit bracket
//!   sets of §3.3 — the paper's own motivation for the compact scheme;
//! * node-expansion overhead in the control-region pipeline (expansion +
//!   cycle equivalence vs cycle equivalence alone on the unexpanded S).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pst_core::{cycle_equiv_slow_brackets_unchecked, node_expand, CycleEquiv};
use pst_workloads::random_cfg;

fn bench_bracket_names(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_bracket_names");
    g.sample_size(15);
    for &n in &[100usize, 400, 1_600, 6_400] {
        let cfg = random_cfg(n, n / 2, 31).expect("bench generator parameters are valid");
        let (s, _) = cfg.to_strongly_connected();
        g.bench_with_input(BenchmarkId::new("compact_names_fig4", n), &n, |b, _| {
            b.iter(|| CycleEquiv::compute_unchecked(&s, cfg.entry()))
        });
        g.bench_with_input(BenchmarkId::new("explicit_sets_s3_3", n), &n, |b, _| {
            b.iter(|| cycle_equiv_slow_brackets_unchecked(&s, cfg.entry()))
        });
    }
    g.finish();
}

fn bench_node_expansion(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_node_expansion");
    g.sample_size(15);
    for &n in &[1_000usize, 4_000] {
        let cfg = random_cfg(n, n / 2, 37).expect("bench generator parameters are valid");
        let (s, _) = cfg.to_strongly_connected();
        g.bench_with_input(BenchmarkId::new("edge_ce_only", n), &n, |b, _| {
            b.iter(|| CycleEquiv::compute_unchecked(&s, cfg.entry()))
        });
        g.bench_with_input(BenchmarkId::new("expand_plus_ce", n), &n, |b, _| {
            b.iter(|| {
                let (t, _rep) = node_expand(&s);
                CycleEquiv::compute_unchecked(&t, pst_cfg::NodeId::from_index(2 * cfg.entry().index()))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_bracket_names, bench_node_expansion);
criterion_main!(benches);
