//! Bench: §6.1 — PST divide-and-conquer φ-placement vs the classical IDF
//! algorithm, on the paper's worst case (nested repeat-until loops, whose
//! dominance frontiers grow quadratically) and on a realistic program.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pst_core::{collapse_all, ProgramStructureTree};
use pst_ssa::{place_phis_cytron, place_phis_pst_unchecked};
use pst_workloads::{generate_function, ProgramGenConfig};

/// `depth` nested do-while loops with one assignment per level.
fn nested_repeat_until_source(depth: usize) -> String {
    let mut body = String::from("x0 = x0 + 1;");
    for d in 1..depth {
        body = format!("do {{ {body} x{d} = x{d} + 1; }} while (c{d} < 2);");
    }
    format!("fn f(k) {{ do {{ {body} }} while (k < 2); return x0; }}")
}

fn bench_nests(c: &mut Criterion) {
    let mut g = c.benchmark_group("phi_nested_repeat_until");
    g.sample_size(15);
    for &depth in &[8usize, 32, 96] {
        let src = nested_repeat_until_source(depth);
        let p = pst_lang::parse_program(&src).unwrap();
        let l = pst_lang::lower_function(&p.functions[0]).unwrap();
        let pst = ProgramStructureTree::build(&l.cfg);
        let collapsed = collapse_all(&l.cfg, &pst);
        g.bench_with_input(BenchmarkId::new("cytron_idf", depth), &depth, |b, _| {
            b.iter(|| place_phis_cytron(&l))
        });
        g.bench_with_input(BenchmarkId::new("pst_regions", depth), &depth, |b, _| {
            b.iter(|| place_phis_pst_unchecked(&l, &pst, &collapsed))
        });
    }
    g.finish();
}

fn bench_generated(c: &mut Criterion) {
    let mut g = c.benchmark_group("phi_generated_program");
    g.sample_size(15);
    let config = ProgramGenConfig {
        target_stmts: 1_500,
        num_vars: 40,
        ..Default::default()
    };
    let f = generate_function("big", &config, 3);
    let l = pst_lang::lower_function(&f).unwrap();
    let pst = ProgramStructureTree::build(&l.cfg);
    let collapsed = collapse_all(&l.cfg, &pst);
    g.bench_function("cytron_idf", |b| b.iter(|| place_phis_cytron(&l)));
    g.bench_function("pst_regions", |b| {
        b.iter(|| place_phis_pst_unchecked(&l, &pst, &collapsed))
    });
    g.bench_function("pst_build_plus_collapse", |b| {
        b.iter(|| {
            let pst = ProgramStructureTree::build(&l.cfg);
            collapse_all(&l.cfg, &pst)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_nests, bench_generated);
criterion_main!(benches);
