//! Bench: linearity of PST construction — time per edge should stay flat
//! as graphs grow, across structured, branchy and random families.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pst_core::ProgramStructureTree;
use pst_workloads::{diamond_ladder, linear_chain, nested_while_loops, random_cfg};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("pst_build_scaling");
    g.sample_size(15);
    for &n in &[1_000usize, 4_000, 16_000] {
        let families = [
            ("chain", linear_chain(n)),
            ("ladder", diamond_ladder(n / 3)),
            ("loop_nest", nested_while_loops(n / 2)),
            (
                "random",
                random_cfg(n, n / 2, 23).expect("bench generator parameters are valid"),
            ),
        ];
        for (name, cfg) in families {
            g.throughput(Throughput::Elements(cfg.edge_count() as u64));
            g.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| ProgramStructureTree::build(&cfg))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
