//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p pst-bench --bin experiments -- all
//! cargo run --release -p pst-bench --bin experiments -- fig5
//! cargo run --release -p pst-bench --bin experiments -- timing --format json
//! ```
//!
//! Subcommands: `table1 fig5 fig6 fig7 fig9 fig10 qpg timing all`.
//! EXPERIMENTS.md records each output next to the paper's numbers.
//!
//! `timing` runs through the `pst-perf` harness machinery: every pass is
//! sampled repeatedly, summarized with robust statistics
//! (median/MAD/bootstrap CI), and measured for allocations. The default
//! `--format text` keeps the human table; `--format json` additionally
//! writes the measurements as a `BENCH_<label>.json` report
//! (`--out <path>`, default `BENCH_experiments.json`) in the same
//! schema `pst bench` produces, so the regression gate can consume
//! corpus timings too (see docs/BENCHMARKING.md).

use std::time::Instant;

use pst_bench::{analyze, corpus, kind_totals, pct, phi_fractions, ProcAnalysis};
use pst_controldep::{cfs_control_regions, fow_control_regions};
use pst_core::{canonical_regions, ControlRegions, CycleEquiv};
use pst_dataflow::{solve_iterative, QpgContext, Seg, SingleVariableReachingDefs};
use pst_dominators::{dominator_tree, iterative_dominator_tree, Direction};
use pst_lang::VarId;
use pst_perf::{
    fmt_ns, AllocStats, BenchConfig, BenchReport, BootstrapConfig, PhaseReport, Summary,
    WorkloadReport, BENCH_SCHEMA_VERSION,
};
use pst_ssa::{place_phis_cytron, place_phis_pst_unchecked};
use pst_workloads::PAPER_TABLE;

/// The experiment binary counts its allocations like the `pst` CLI, so
/// the timing report can attribute memory per pass.
#[global_allocator]
static ALLOC: pst_perf::CountingAlloc = pst_perf::CountingAlloc::new();

/// Output mode for `timing`.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let format = match take_value(&mut args, "--format").as_deref() {
        None | Some("text") => Format::Text,
        Some("json") => Format::Json,
        Some(other) => {
            eprintln!("experiments: `--format` expects text|json, got `{other}`");
            std::process::exit(2);
        }
    };
    let out = take_value(&mut args, "--out");
    let which = args.first().map(String::as_str).unwrap_or("all");
    let run_started = Instant::now();
    if let Ok(target) = std::env::var("PST_JOURNAL") {
        if !target.is_empty() {
            let seed = std::env::var("PST_TRACE_SEED")
                .ok()
                .and_then(|s| s.parse::<u64>().ok());
            if let Err(e) = pst_obs::journal::install(&target, seed) {
                eprintln!("experiments: cannot open journal `{target}`: {e}");
                std::process::exit(2);
            }
        }
    }
    pst_obs::journal::emit(pst_obs::journal::Event::RunStart {
        command: "experiments".to_string(),
        args: args.clone(),
    });
    let c = corpus();
    println!("# PST paper experiments (corpus seed 1994, 254 procedures)\n");
    let analyses = analyze(&c);
    match which {
        "table1" => table1(&analyses),
        "fig5" => fig5(&analyses),
        "fig6" => fig6(&analyses),
        "fig7" => fig7(&analyses),
        "fig9" => fig9(&analyses),
        "fig10" => fig10(&analyses),
        "qpg" => qpg(&analyses),
        "timing" => timing(&analyses, format, out.as_deref()),
        "all" => {
            table1(&analyses);
            fig5(&analyses);
            fig6(&analyses);
            fig7(&analyses);
            fig9(&analyses);
            fig10(&analyses);
            qpg(&analyses);
            timing(&analyses, format, out.as_deref());
        }
        other => {
            eprintln!(
                "unknown experiment `{other}`; use table1|fig5|fig6|fig7|fig9|fig10|qpg|timing|all"
            );
            std::process::exit(2);
        }
    }
    report_observability();
    pst_obs::journal::emit(pst_obs::journal::Event::RunEnd {
        command: "experiments".to_string(),
        exit_code: 0,
        nanos: run_started.elapsed().as_nanos() as u64,
    });
    pst_obs::journal::uninstall();
}

/// Removes `name <value>` or `name=<value>` from `args` (last one wins).
fn take_value(args: &mut Vec<String>, name: &str) -> Option<String> {
    let mut value = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == name && i + 1 < args.len() {
            args.remove(i);
            value = Some(args.remove(i));
        } else if let Some(v) = args[i].strip_prefix(name).and_then(|r| r.strip_prefix('=')) {
            value = Some(v.to_string());
            args.remove(i);
        } else {
            i += 1;
        }
    }
    value
}

/// Per-phase span/counter report for the whole run; `PST_METRICS=<path>`
/// additionally writes the report as JSON (see docs/OBSERVABILITY.md).
/// `-` means stderr, the same convention as the `pst` CLI.
fn report_observability() {
    if !pst_obs::enabled() {
        return;
    }
    let report = pst_obs::report();
    println!("## Per-phase observability report\n");
    print!("{}", report.render_text());
    if let Ok(path) = std::env::var("PST_METRICS") {
        if !path.is_empty() {
            let text = format!("{}\n", report.to_json());
            if path == "-" {
                eprint!("{text}");
            } else {
                match std::fs::write(&path, text) {
                    Ok(()) => println!("\nmetrics written to {path}"),
                    Err(e) => eprintln!("experiments: cannot write metrics to `{path}`: {e}"),
                }
            }
        }
    }
}

/// §4 Table: the benchmark suite.
fn table1(analyses: &[ProcAnalysis<'_>]) {
    println!("## Table 1 — benchmark suite (paper: 21549 lines, 254 procedures)\n");
    println!(
        "{:<8} {:<10} {:>12} {:>6} {:>12} {:>6}",
        "suite", "program", "paper lines", "procs", "our stmts", "procs"
    );
    let mut total_stmts = 0usize;
    let mut total_procs = 0usize;
    for &(suite, program, lines, procs) in PAPER_TABLE {
        let ours: Vec<&ProcAnalysis> = analyses
            .iter()
            .filter(|a| a.procedure.program == program)
            .collect();
        let stmts: usize = ours
            .iter()
            .map(|a| a.procedure.lowered.statement_count())
            .sum();
        total_stmts += stmts;
        total_procs += ours.len();
        println!(
            "{:<8} {:<10} {:>12} {:>6} {:>12} {:>6}",
            suite,
            program,
            lines,
            procs,
            stmts,
            ours.len()
        );
    }
    println!(
        "{:<8} {:<10} {:>12} {:>6} {:>12} {:>6}\n",
        "total", "", 21549, 254, total_stmts, total_procs
    );
}

/// Figure 5: region depth distribution and cumulative share.
fn fig5(analyses: &[ProcAnalysis<'_>]) {
    let merged =
        pst_core::PstStats::merge(&analyses.iter().map(|a| a.stats.clone()).collect::<Vec<_>>());
    println!("## Figure 5 — PST depth (paper: N=8609, avg 2.68, max 13, ~97% at depth <= 6)\n");
    println!(
        "N = {}   average depth = {:.2}   max depth = {}\n",
        merged.region_count,
        merged.average_depth(),
        merged.max_depth
    );
    println!("{:>5} {:>8} {:>10}", "depth", "regions", "cumulative");
    for d in 1..merged.depth_histogram.len() {
        println!(
            "{:>5} {:>8} {:>10}",
            d,
            merged.depth_histogram[d],
            pct(merged.cumulative_at_depth(d))
        );
    }
    println!(
        "\nshare of regions at depth <= 6: {}",
        pct(merged.cumulative_at_depth(6))
    );
    println!("merged stats (JSON): {}\n", merged.to_json());
}

/// Buckets procedures by size and prints an aggregate per bucket.
fn bucketed(analyses: &[ProcAnalysis<'_>], label: &str, f: impl Fn(&ProcAnalysis<'_>) -> f64) {
    const BUCKETS: &[(usize, usize)] = &[
        (0, 25),
        (25, 50),
        (50, 100),
        (100, 200),
        (200, 400),
        (400, usize::MAX),
    ];
    println!("{:>14} {:>6} {:>14}", "size bucket", "procs", label);
    for &(lo, hi) in BUCKETS {
        let in_bucket: Vec<f64> = analyses
            .iter()
            .filter(|a| a.stats.procedure_size >= lo && a.stats.procedure_size < hi)
            .map(&f)
            .collect();
        if in_bucket.is_empty() {
            continue;
        }
        let avg = in_bucket.iter().sum::<f64>() / in_bucket.len() as f64;
        let hi_label = if hi == usize::MAX {
            "+".to_string()
        } else {
            format!("-{hi}")
        };
        println!(
            "{:>14} {:>6} {:>14.2}",
            format!("{lo}{hi_label}"),
            in_bucket.len(),
            avg
        );
    }
    println!();
}

/// Figure 6: PST size and depth versus procedure size.
fn fig6(analyses: &[ProcAnalysis<'_>]) {
    println!("## Figure 6(a) — PST size vs procedure size (paper: grows with size)\n");
    bucketed(analyses, "avg regions", |a| a.stats.region_count as f64);
    println!("## Figure 6(b) — average PST depth vs procedure size (paper: flat)\n");
    bucketed(analyses, "avg depth", |a| a.stats.average_depth());
}

/// Figure 7: weighted proportion of regions by kind.
fn fig7(analyses: &[ProcAnalysis<'_>]) {
    println!("## Figure 7 — weighted region kinds (paper: blocks 23.2%, other ~2%)\n");
    let totals = kind_totals(analyses);
    let total: usize = totals.iter().map(|(_, w)| w).sum();
    for (kind, w) in &totals {
        println!(
            "{:>14}: {:>6}  ({})",
            kind.to_string(),
            w,
            pct(*w as f64 / total as f64)
        );
    }
    let structured = analyses
        .iter()
        .filter(|a| a.classification.is_completely_structured())
        .count();
    println!(
        "\ncompletely structured procedures: {structured} of {} (paper: 182 of 254)",
        analyses.len()
    );
    let unstructured_weight: usize = totals
        .iter()
        .filter(|(k, _)| !k.is_structured())
        .map(|(_, w)| w)
        .sum();
    println!(
        "unstructured (dag + cyclic) share: {}\n",
        pct(unstructured_weight as f64 / total as f64)
    );
}

/// Figure 9: maximum collapsed region size vs procedure size.
fn fig9(analyses: &[ProcAnalysis<'_>]) {
    println!("## Figure 9 — max region size vs procedure size (paper: bounded, no growth)\n");
    bucketed(analyses, "avg max-region", |a| {
        a.stats.max_collapsed_size as f64
    });
}

/// Figure 10: fraction of regions examined per variable while placing φs.
fn fig10(analyses: &[ProcAnalysis<'_>]) {
    let fr = phi_fractions(analyses);
    println!(
        "## Figure 10 — regions examined per variable during phi-placement (paper: N=5072, 70% of variables examine < 1/5)\n"
    );
    println!("N = {} variables\n", fr.len());
    println!("{:>12} {:>10}", "fraction", "variables");
    for bin in 0..10 {
        let lo = bin as f64 / 10.0;
        let hi = lo + 0.1;
        let count = fr
            .iter()
            .filter(|&&f| f >= lo && (f < hi || bin == 9))
            .count();
        println!(
            "{:>12} {:>10}",
            format!("{:.0}-{:.0}%", lo * 100.0, hi * 100.0),
            count
        );
    }
    let below_fifth = fr.iter().filter(|&&f| f < 0.2).count();
    println!(
        "\nvariables examining < 20% of regions: {}\n",
        pct(below_fifth as f64 / fr.len() as f64)
    );
}

/// §6.2: QPG size relative to the CFG, plus the §6.3 SEG comparison.
fn qpg(analyses: &[ProcAnalysis<'_>]) {
    println!(
        "## QPG size — quick propagation graphs (paper: < 10% of statement-level CFG on average)\n"
    );
    let mut node_ratios = Vec::new();
    let mut stmt_ratios = Vec::new();
    let mut seg_ratios = Vec::new();
    let mut seg_smaller = 0usize;
    let mut total = 0usize;
    for a in analyses {
        let l = &a.procedure.lowered;
        let stmt_size = l.statement_count().max(l.cfg.node_count());
        let ctx = QpgContext::new(&l.cfg, &a.pst).expect("PST matches its CFG");
        for v in 0..l.var_count() {
            let var = VarId::from_index(v);
            let problem = SingleVariableReachingDefs::new(l, var);
            let q = ctx.build_from_sites(problem.sites()).expect("PST matches its CFG");
            node_ratios.push(q.node_count() as f64 / l.cfg.node_count() as f64);
            stmt_ratios.push(q.node_count() as f64 / stmt_size as f64);
            let seg = Seg::build(&l.cfg, &problem).expect("forward problem");
            seg_ratios.push(seg.node_count() as f64 / l.cfg.node_count() as f64);
            if seg.node_count() <= q.node_count() {
                seg_smaller += 1;
            }
            total += 1;
        }
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!("instances (procedure x variable): {}", node_ratios.len());
    println!(
        "average QPG size vs block-level CFG:     {}",
        pct(avg(&node_ratios))
    );
    println!(
        "average QPG size vs statement-level CFG: {}",
        pct(avg(&stmt_ratios))
    );
    println!(
        "\n§6.3 comparison — sparse evaluation graphs (paper: SEGs \"in general will be smaller\"):"
    );
    println!(
        "average SEG size vs block-level CFG:     {}",
        pct(avg(&seg_ratios))
    );
    println!(
        "instances where SEG <= QPG: {} ({})\n",
        seg_smaller,
        pct(seg_smaller as f64 / total as f64)
    );
}

/// §3/§5 timing claims, measured over the whole corpus through the
/// `pst-perf` harness machinery: every pass yields a sample vector,
/// summarized with median/MAD/bootstrap-CI, plus one allocation-counted
/// run. `--format json` writes the result in the `BENCH_<label>.json`
/// schema so `pst bench --compare` can gate corpus timings too.
fn timing(analyses: &[ProcAnalysis<'_>], format: Format, out: Option<&str>) {
    const REPS: usize = 5;
    println!("## Timing — corpus totals over {REPS} runs (paper: cycle equivalence beats Lengauer-Tarjan; control regions in O(E) beat O(EN) refinement)\n");

    // The paper's implementation treats the end->start edge implicitly
    // (doubly-linked CFG edges); we materialize S once, outside the timed
    // region, so the comparison is algorithm-vs-algorithm.
    let closures: Vec<(pst_cfg::Graph, pst_cfg::NodeId)> = analyses
        .iter()
        .map(|a| {
            let cfg = &a.procedure.lowered.cfg;
            (cfg.to_strongly_connected().0, cfg.entry())
        })
        .collect();
    let contexts: Vec<QpgContext> = analyses
        .iter()
        .map(|a| QpgContext::new(&a.procedure.lowered.cfg, &a.pst).expect("PST matches its CFG"))
        .collect();

    type Pass<'p> = (&'static str, &'static str, Box<dyn Fn() + 'p>);
    let passes: Vec<Pass<'_>> = vec![
        (
            "cycle_equiv_fast",
            "cycle equivalence (fast, Fig. 4)",
            Box::new(|| {
                for (s, entry) in &closures {
                    std::hint::black_box(CycleEquiv::compute_unchecked(s, *entry));
                }
            }),
        ),
        (
            "dominators_lt",
            "Lengauer-Tarjan dominators",
            Box::new(|| {
                for a in analyses {
                    let cfg = &a.procedure.lowered.cfg;
                    std::hint::black_box(dominator_tree(cfg.graph(), cfg.entry()));
                }
            }),
        ),
        (
            "dominators_iterative",
            "iterative (CHK) dominators",
            Box::new(|| {
                for a in analyses {
                    let cfg = &a.procedure.lowered.cfg;
                    std::hint::black_box(iterative_dominator_tree(
                        cfg.graph(),
                        cfg.entry(),
                        Direction::Forward,
                    ));
                }
            }),
        ),
        (
            "sese_detection",
            "SESE region detection (CE + DFS)",
            Box::new(|| {
                for a in analyses {
                    std::hint::black_box(canonical_regions(&a.procedure.lowered.cfg));
                }
            }),
        ),
        (
            "control_regions_linear",
            "control regions, linear (ours)",
            Box::new(|| {
                for a in analyses {
                    std::hint::black_box(ControlRegions::compute(&a.procedure.lowered.cfg));
                }
            }),
        ),
        (
            "control_regions_cfs",
            "control regions, CFS refinement",
            Box::new(|| {
                for a in analyses {
                    std::hint::black_box(cfs_control_regions(&a.procedure.lowered.cfg));
                }
            }),
        ),
        (
            "control_regions_fow",
            "control regions, FOW hashing",
            Box::new(|| {
                for a in analyses {
                    std::hint::black_box(fow_control_regions(&a.procedure.lowered.cfg));
                }
            }),
        ),
        (
            "phi_cytron",
            "phi placement, Cytron IDF",
            Box::new(|| {
                for a in analyses {
                    std::hint::black_box(place_phis_cytron(&a.procedure.lowered));
                }
            }),
        ),
        (
            "phi_pst",
            "phi placement, PST divide-and-conquer",
            Box::new(|| {
                for a in analyses {
                    std::hint::black_box(place_phis_pst_unchecked(
                        &a.procedure.lowered,
                        &a.pst,
                        &a.collapsed,
                    ));
                }
            }),
        ),
        (
            "dataflow_iterative",
            "per-var reaching defs, full iterative",
            Box::new(|| {
                for a in analyses {
                    let l = &a.procedure.lowered;
                    for v in 0..l.var_count() {
                        let p = SingleVariableReachingDefs::new(l, VarId::from_index(v));
                        std::hint::black_box(solve_iterative(&l.cfg, &p));
                    }
                }
            }),
        ),
        (
            "dataflow_qpg",
            "per-var reaching defs, QPG",
            Box::new(|| {
                for (a, ctx) in analyses.iter().zip(&contexts) {
                    let l = &a.procedure.lowered;
                    for v in 0..l.var_count() {
                        let p = SingleVariableReachingDefs::new(l, VarId::from_index(v));
                        let q = ctx.build_from_sites(p.sites()).unwrap();
                        std::hint::black_box(ctx.solve(&q, &p).unwrap());
                    }
                }
            }),
        ),
        (
            "dataflow_seg",
            "per-var reaching defs, SEG (CCF91)",
            Box::new(|| {
                for a in analyses {
                    let l = &a.procedure.lowered;
                    for v in 0..l.var_count() {
                        let p = SingleVariableReachingDefs::new(l, VarId::from_index(v));
                        let seg = Seg::build_unchecked(&l.cfg, &p);
                        std::hint::black_box(seg.solve(&l.cfg, &p));
                    }
                }
            }),
        ),
    ];

    // Timing reps first, then one allocation-counted run per pass inside
    // an outer snapshot so phase attribution is checkable against the
    // total (attributed + unattributed = outer delta).
    let bootstrap = BootstrapConfig::default();
    let mut sample_sets: Vec<Vec<u64>> = Vec::with_capacity(passes.len());
    let mut totals = vec![0u64; REPS];
    for (_, _, f) in &passes {
        let mut samples = Vec::with_capacity(REPS);
        for total in totals.iter_mut() {
            let t = Instant::now();
            f();
            let ns = t.elapsed().as_nanos() as u64;
            samples.push(ns);
            *total += ns;
        }
        sample_sets.push(samples);
    }
    pst_perf::alloc::reset_peak();
    let outer_before = pst_perf::alloc::snapshot();
    let mut phases = Vec::with_capacity(passes.len());
    let mut attributed_bytes = 0u64;
    for ((name, _, f), samples) in passes.iter().zip(&sample_sets) {
        pst_perf::alloc::reset_peak();
        let before = pst_perf::alloc::snapshot();
        f();
        let after = pst_perf::alloc::snapshot();
        let d = pst_perf::alloc::delta(&before, &after);
        attributed_bytes += d.bytes;
        phases.push(PhaseReport {
            name: name.to_string(),
            time: Summary::from_samples(samples, &bootstrap),
            alloc: AllocStats {
                allocs: d.allocs,
                bytes_total: d.bytes,
                peak_live_bytes: d.peak_live_bytes,
            },
        });
    }
    let outer_after = pst_perf::alloc::snapshot();
    let outer = pst_perf::alloc::delta(&outer_before, &outer_after);

    println!(
        "{:<44} {:>10} {:>9} {:>10} {:>10}",
        "pass (corpus total)", "median", "mad", "ci_lo", "ci_hi"
    );
    for ((_, label, _), p) in passes.iter().zip(&phases) {
        println!(
            "{:<44} {:>10} {:>9} {:>10} {:>10}",
            label,
            fmt_ns(p.time.median),
            fmt_ns(p.time.mad),
            fmt_ns(p.time.ci_lo),
            fmt_ns(p.time.ci_hi)
        );
    }
    let median_of = |name: &str| {
        phases
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.time.median.max(1) as f64)
            .expect("pass exists")
    };
    println!(
        "\ncycle equivalence vs Lengauer-Tarjan: {:.2}x",
        median_of("dominators_lt") / median_of("cycle_equiv_fast")
    );
    println!(
        "linear control regions vs CFS refinement: {:.2}x",
        median_of("control_regions_cfs") / median_of("control_regions_linear")
    );
    println!();

    if format == Format::Json {
        let (nodes, edges) = analyses.iter().fold((0u64, 0u64), |(n, e), a| {
            let cfg = &a.procedure.lowered.cfg;
            (n + cfg.node_count() as u64, e + cfg.edge_count() as u64)
        });
        let report = BenchReport {
            schema_version: BENCH_SCHEMA_VERSION,
            label: "experiments".to_string(),
            config: BenchConfig {
                iters: REPS as u64,
                warmup: 0,
                bootstrap,
                quick: false,
            },
            workloads: vec![WorkloadReport {
                name: "paper_corpus".to_string(),
                nodes,
                edges,
                phases,
                total_time: Summary::from_samples(&totals, &bootstrap),
                alloc_total: AllocStats {
                    allocs: outer.allocs,
                    bytes_total: outer.bytes,
                    peak_live_bytes: outer.peak_live_bytes,
                },
                alloc_unattributed_bytes: outer.bytes.saturating_sub(attributed_bytes),
            }],
            obs: pst_obs::report().to_json(),
        };
        let json = report.to_json();
        if let Err(e) = BenchReport::validate(&json) {
            eprintln!("experiments: generated report failed self-validation: {e}");
            std::process::exit(1);
        }
        let path = out.unwrap_or("BENCH_experiments.json");
        match std::fs::write(path, format!("{json}\n")) {
            Ok(()) => println!("timing report written to {path}\n"),
            Err(e) => {
                eprintln!("experiments: cannot write report to `{path}`: {e}");
                std::process::exit(1);
            }
        }
    }
}
