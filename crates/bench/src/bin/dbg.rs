use pst_core::{classify_regions, collapse_all, CollapsedNode, ProgramStructureTree, RegionKind};
use pst_workloads::{generate_function, ProgramGenConfig};

fn main() {
    let config = ProgramGenConfig { target_stmts: 60, goto_prob: 0.0, ..Default::default() };
    for seed in 0..30u64 {
        let f = generate_function("p", &config, seed);
        let l = pst_lang::lower_function(&f).unwrap();
        let pst = ProgramStructureTree::build(&l.cfg);
        let c = classify_regions(&l.cfg, &pst);
        let collapsed = collapse_all(&l.cfg, &pst);
        for r in pst.regions() {
            if c.kind(r) == RegionKind::Dag {
                let mini = &collapsed[r.index()];
                println!("seed {seed} region {r:?} head={:?} tail={:?}", mini.head, mini.tail);
                for (i, m) in mini.members.iter().enumerate() {
                    let tag = match m { CollapsedNode::Interior(n) => format!("int {n}"), CollapsedNode::Child(c) => format!("child {c}") };
                    let outs: Vec<String> = mini.graph.successors(pst_cfg::NodeId::from_index(i)).map(|s| s.index().to_string()).collect();
                    println!("  m{i} [{tag}] -> {}", outs.join(","));
                }
                println!();
                return;
            }
        }
    }
}
