//! Shared analysis helpers for the experiment binary and the Criterion
//! benches: corpus construction, per-procedure PST analysis, and the
//! aggregations behind each figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pst_core::{
    classify_regions, collapse_all, CollapsedRegion, ProgramStructureTree, PstStats,
    RegionClassification, RegionKind,
};
use pst_ssa::{place_phis_cytron, place_phis_pst_unchecked};
use pst_workloads::{paper_corpus, Corpus, Procedure};

/// The seed every experiment uses, fixed so all outputs are reproducible.
pub const CORPUS_SEED: u64 = 1994;

/// Builds the canonical 254-procedure corpus.
pub fn corpus() -> Corpus {
    paper_corpus(CORPUS_SEED)
}

/// Everything the figures need about one procedure.
pub struct ProcAnalysis<'a> {
    /// The corpus procedure.
    pub procedure: &'a Procedure,
    /// Its program structure tree.
    pub pst: ProgramStructureTree,
    /// Collapsed per-region graphs.
    pub collapsed: Vec<CollapsedRegion>,
    /// Shape statistics (Figures 5, 6, 9).
    pub stats: PstStats,
    /// Region kinds (Figure 7).
    pub classification: RegionClassification,
}

/// Analyzes every procedure of the corpus.
pub fn analyze(corpus: &Corpus) -> Vec<ProcAnalysis<'_>> {
    corpus
        .iter()
        .map(|procedure| {
            let cfg = &procedure.lowered.cfg;
            let pst = ProgramStructureTree::build(cfg);
            let collapsed = collapse_all(cfg, &pst);
            let stats = PstStats::of(&pst);
            let classification = classify_regions(cfg, &pst);
            ProcAnalysis {
                procedure,
                pst,
                collapsed,
                stats,
                classification,
            }
        })
        .collect()
}

/// Figure 10's raw data: for every variable of every procedure, the
/// fraction of PST regions examined during PST-based φ-placement.
/// Also cross-checks the placement against the Cytron baseline.
pub fn phi_fractions(analyses: &[ProcAnalysis<'_>]) -> Vec<f64> {
    let mut fractions = Vec::new();
    for a in analyses {
        let l = &a.procedure.lowered;
        let sparse = place_phis_pst_unchecked(l, &a.pst, &a.collapsed);
        let baseline = place_phis_cytron(l);
        assert_eq!(
            baseline, sparse.placement,
            "Theorem 9 violated on a corpus procedure"
        );
        for v in 0..l.var_count() {
            fractions.push(sparse.fraction_examined(pst_lang::VarId::from_index(v)));
        }
    }
    fractions
}

/// Weighted region-kind totals across analyses (Figure 7), in the fixed
/// order block / if-then-else / case / loop / dag / unstructured.
pub fn kind_totals(analyses: &[ProcAnalysis<'_>]) -> Vec<(RegionKind, usize)> {
    let mut totals: Vec<(RegionKind, usize)> = Vec::new();
    for a in analyses {
        for (kind, w) in a.classification.weighted_counts() {
            match totals.iter_mut().find(|(k, _)| *k == kind) {
                Some((_, t)) => *t += w,
                None => totals.push((kind, w)),
            }
        }
    }
    totals
}

/// Renders a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_analyzes_cleanly() {
        let c = corpus();
        let analyses = analyze(&c);
        assert_eq!(analyses.len(), 254);
        let total_regions: usize = analyses.iter().map(|a| a.stats.region_count).sum();
        assert!(total_regions > 1000, "corpus should be region-rich");
    }

    #[test]
    fn phi_fractions_are_probabilities() {
        let c = corpus();
        let analyses = analyze(&c);
        let fr = phi_fractions(&analyses[..20]);
        assert!(!fr.is_empty());
        assert!(fr.iter().all(|&f| (0.0..=1.0).contains(&f)));
    }
}
