//! PST-based φ-placement (paper §6.1, Theorem 9).
//!
//! If a merge node needs a φ for variable `v`, it lies in the iterated
//! dominance frontier of an assignment to `v` *in the same SESE region*
//! (Theorem 9). The paper's algorithm therefore:
//!
//! 1. marks every region containing an assignment to `v` (and, for the
//!    entry's implicit definition, the root),
//! 2. collapses immediately nested regions to single statements — a marked
//!    child counts as a definition, an unmarked one as a NO-OP — and
//! 3. runs any standard φ-placement inside each marked region, treating
//!    the region entry as a definition.
//!
//! Unmarked regions are never examined: that is the *sparsity* win
//! measured in the paper's Figure 10 and reproduced by
//! [`PstPhiPlacement::fraction_examined`]. Exploiting nesting also defuses
//! the quadratic dominance-frontier blow-up of nested repeat-until loops
//! (each loop is its own region), which the `phi_placement` bench measures.

use std::collections::HashSet;

use pst_cfg::{Graph, NodeId};
use pst_core::{CollapsedNode, CollapsedRegion, ProgramStructureTree, RegionId};
use pst_dominators::{dominance_frontiers, dominator_tree, iterated_dominance_frontier, Direction};
use pst_lang::{LoweredFunction, VarId};

use crate::{PhiPlacement, SsaError};

/// Result of PST-based φ-placement, with the sparsity accounting of the
/// paper's Figure 10.
#[derive(Clone, Debug)]
pub struct PstPhiPlacement {
    /// The computed placement (equal to the Cytron baseline, per
    /// Theorem 9 — asserted by the property tests).
    pub placement: PhiPlacement,
    /// Per variable: number of regions examined (marked).
    pub regions_examined: Vec<usize>,
    /// Total number of regions in the PST (including the root).
    pub total_regions: usize,
}

impl PstPhiPlacement {
    /// Fraction of regions examined for `var` (Figure 10's x-axis).
    pub fn fraction_examined(&self, var: VarId) -> f64 {
        self.regions_examined[var.index()] as f64 / self.total_regions as f64
    }
}

/// Per-region analysis state, built lazily the first time a region is
/// marked by any variable and reused across variables.
struct RegionAnalysis {
    /// The collapsed graph plus a synthetic entry node (so the region head
    /// is a proper join when a backedge targets it).
    graph: Graph,
    entry: NodeId,
    frontiers: Vec<Vec<NodeId>>,
}

fn region_analysis(mini: &CollapsedRegion) -> RegionAnalysis {
    let mut graph = mini.graph.clone();
    let entry = graph.add_node();
    graph.add_edge(entry, mini.head);
    let dt = dominator_tree(&graph, entry);
    let frontiers = dominance_frontiers(&graph, &dt, Direction::Forward);
    RegionAnalysis {
        graph,
        entry,
        frontiers,
    }
}

/// Places φ-functions for every variable by divide-and-conquer over the
/// PST.
///
/// `collapsed` must come from [`pst_core::collapse_all`] on the same
/// CFG/PST pair.
///
/// # Errors
///
/// Returns an [`SsaError`] when the PST or the collapsed graphs do not
/// belong to `function`'s CFG (a collapsed child region or the synthetic
/// region entry surfaces as a join).
///
/// # Examples
///
/// ```
/// use pst_lang::{parse_program, lower_function};
/// use pst_core::{collapse_all, ProgramStructureTree};
/// use pst_ssa::{place_phis_cytron, place_phis_pst};
/// let p = parse_program(
///     "fn f(n) { s = 0; while (n > 0) { s = s + n; n = n - 1; } return s; }"
/// ).unwrap();
/// let l = lower_function(&p.functions[0]).unwrap();
/// let pst = ProgramStructureTree::build(&l.cfg);
/// let collapsed = collapse_all(&l.cfg, &pst);
/// let sparse = place_phis_pst(&l, &pst, &collapsed).unwrap();
/// assert_eq!(sparse.placement, place_phis_cytron(&l)); // Theorem 9
/// ```
pub fn place_phis_pst(
    function: &LoweredFunction,
    pst: &ProgramStructureTree,
    collapsed: &[CollapsedRegion],
) -> Result<PstPhiPlacement, SsaError> {
    let _span = pst_obs::Span::enter("phi_pst");
    let total_regions = pst.region_count();
    let mut analyses: Vec<Option<RegionAnalysis>> = (0..total_regions).map(|_| None).collect();
    let mut phis: Vec<Vec<NodeId>> = Vec::with_capacity(function.var_count());
    let mut regions_examined = Vec::with_capacity(function.var_count());

    // One pass over the blocks collects every variable's definition sites
    // (the paper: "by maintaining a list of definitions for each variable,
    // we can perform the marking step in time proportional to the number
    // of regions marked").
    let mut def_sites: Vec<Vec<NodeId>> = vec![Vec::new(); function.var_count()];
    for node in function.cfg.graph().nodes() {
        for s in &function.blocks[node.index()].stmts {
            if let Some(d) = s.def {
                if def_sites[d.index()].last() != Some(&node) {
                    def_sites[d.index()].push(node);
                }
            }
        }
    }

    for sites in def_sites.iter_mut().take(function.var_count()) {
        let mut def_nodes = std::mem::take(sites);
        // The entry's implicit definition marks the root region.
        if !def_nodes.contains(&function.cfg.entry()) {
            def_nodes.push(function.cfg.entry());
        }

        // Step 1: mark every region containing an assignment (all
        // ancestors of the defining nodes' innermost regions).
        let mut marked: HashSet<RegionId> = HashSet::new();
        for &d in &def_nodes {
            let mut r = Some(pst.region_of_node(d));
            while let Some(region) = r {
                if !marked.insert(region) {
                    break;
                }
                r = pst.parent(region);
            }
        }
        regions_examined.push(marked.len());
        let mut defines_here = vec![false; function.cfg.node_count()];
        for &d in &def_nodes {
            defines_here[d.index()] = true;
        }

        // Steps 2–3: per marked region, seeds are the region entry,
        // interior definitions, and marked children; run IDF locally.
        let mut result: Vec<NodeId> = Vec::new();
        for &region in &marked {
            let mini = &collapsed[region.index()];
            let analysis = analyses[region.index()].get_or_insert_with(|| region_analysis(mini));
            let mut seeds: Vec<NodeId> = vec![analysis.entry];
            for (i, &member) in mini.members.iter().enumerate() {
                let is_def = match member {
                    CollapsedNode::Interior(n) => defines_here[n.index()],
                    CollapsedNode::Child(c) => marked.contains(&c),
                };
                if is_def {
                    seeds.push(NodeId::from_index(i));
                }
            }
            let idf = iterated_dominance_frontier(&analysis.frontiers, &seeds);
            for m in idf {
                match mini.members.get(m.index()) {
                    Some(&CollapsedNode::Interior(n)) => result.push(n),
                    Some(&CollapsedNode::Child(_)) => return Err(SsaError::JoinAtRegionBoundary),
                    None => return Err(SsaError::JoinAtSyntheticEntry),
                }
            }
            let _ = &analysis.graph; // graph retained for debugging/dumps
        }
        phis.push(result);
    }

    Ok(PstPhiPlacement {
        placement: PhiPlacement::from_lists(phis),
        regions_examined,
        total_regions,
    })
}

/// [`place_phis_pst`] for hot paths (benchmarks, the verified pipeline)
/// that have already validated the CFG/PST pair.
///
/// # Panics
///
/// Panics where [`place_phis_pst`] would return an error.
pub fn place_phis_pst_unchecked(
    function: &LoweredFunction,
    pst: &ProgramStructureTree,
    collapsed: &[CollapsedRegion],
) -> PstPhiPlacement {
    place_phis_pst(function, pst, collapsed).expect("CFG/PST pair is consistent")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place_phis_cytron;
    use pst_core::collapse_all;
    use pst_lang::{lower_function, parse_function_body};

    fn both(src: &str) -> (LoweredFunction, PhiPlacement, PstPhiPlacement) {
        let f = parse_function_body(src).unwrap();
        let l = lower_function(&f).unwrap();
        let baseline = place_phis_cytron(&l);
        let pst = ProgramStructureTree::build(&l.cfg);
        let collapsed = collapse_all(&l.cfg, &pst);
        let sparse = place_phis_pst(&l, &pst, &collapsed).unwrap();
        (l, baseline, sparse)
    }

    fn agree(src: &str) {
        let (_, baseline, sparse) = both(src);
        assert_eq!(baseline, sparse.placement, "{src}");
    }

    #[test]
    fn agrees_on_straight_line() {
        agree("x = 1; y = x; return y;");
    }

    #[test]
    fn agrees_on_conditionals() {
        agree("if (c) { x = 1; } else { x = 2; } return x;");
        agree("if (c) { x = 1; } return x;");
        agree("if (c) { if (d) { x = 1; } } else { x = 2; } return x;");
    }

    #[test]
    fn agrees_on_loops() {
        agree("while (n > 0) { n = n - 1; } return n;");
        agree("do { n = n - 1; } while (n > 0); return n;");
        agree("for (i = 0; i < n; i = i + 1) { s = s + i; } return s;");
        agree("while (a) { while (b) { x = x + 1; } y = y + x; } return y;");
    }

    #[test]
    fn agrees_on_switch_and_breaks() {
        agree("switch (x) { case 0: { y = 1; } case 1: { y = 2; } default: { } } return y;");
        agree("while (a) { if (b) { break; } if (c) { continue; } x = x + 1; } return x;");
    }

    #[test]
    fn agrees_on_gotos() {
        agree("top: x = x + 1; if (x < 3) { goto top; } return x;");
        agree(
            "if (c) { goto b; } a: x = x + 1; goto c; b: x = x - 1; c: if (x > 0) { goto a; } return x;",
        );
    }

    #[test]
    fn sparsity_skips_untouched_regions() {
        // `y` is only touched in the top-level straight-line part; the two
        // loop regions must never be examined for it.
        let (l, _, sparse) = both(
            "y = 1;
             while (a) { x = x + 1; }
             while (b) { z = z + 1; }
             return y;",
        );
        let y = l.var_id("y").unwrap();
        let x = l.var_id("x").unwrap();
        assert!(sparse.regions_examined[y.index()] < sparse.total_regions);
        assert!(sparse.regions_examined[y.index()] <= sparse.regions_examined[x.index()]);
        assert!(sparse.fraction_examined(y) < 1.0);
    }

    #[test]
    fn nested_repeat_until_agrees() {
        // The quadratic-DF shape from the paper's §6.1 discussion.
        agree(
            "do { do { do { x = x + 1; } while (a); y = y + x; } while (b); z = z + y; } while (c); return z;",
        );
    }
}
