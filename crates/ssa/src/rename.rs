//! SSA renaming: assign versions to every definition and use.
//!
//! Classic dominator-tree walk with per-variable version stacks (Cytron et
//! al. §5.2). Version 0 of every variable is the implicit definition at
//! the CFG entry, matching the entry-as-definition convention of the
//! placement passes.

use pst_cfg::NodeId;
use pst_dominators::{dominator_tree, DomTree};
use pst_lang::{LoweredFunction, VarId};

use crate::{PhiPlacement, SsaError};

/// A version number of a variable (0 = implicit entry definition).
pub type Version = u32;

/// One φ-function after renaming.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhiNode {
    /// The variable being merged.
    pub var: VarId,
    /// Version defined by this φ.
    pub result: Version,
    /// One argument per incoming edge: `(predecessor, version)`, in the
    /// order of the node's incoming edge list.
    pub args: Vec<(NodeId, Version)>,
}

/// One renamed straight-line statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SsaStmt {
    /// Renamed definition, if the statement writes a variable.
    pub def: Option<(VarId, Version)>,
    /// Renamed uses.
    pub uses: Vec<(VarId, Version)>,
}

/// A function in SSA form.
#[derive(Clone, Debug)]
pub struct SsaForm {
    /// φ-functions per CFG node (empty for most nodes).
    pub phi_nodes: Vec<Vec<PhiNode>>,
    /// Renamed statements per CFG node, parallel to
    /// `LoweredFunction::blocks[n].stmts`.
    pub statements: Vec<Vec<SsaStmt>>,
    /// Number of versions created per variable (≥ 1; version 0 is the
    /// implicit entry value).
    pub version_count: Vec<u32>,
}

impl SsaForm {
    /// Total number of φ-functions.
    pub fn total_phis(&self) -> usize {
        self.phi_nodes.iter().map(|p| p.len()).sum()
    }
}

/// Renames `function` into SSA form given a φ-placement.
///
/// # Errors
///
/// Returns [`SsaError::VersionStackUnderflow`] when `placement` does not
/// belong to `function` and the dominator-tree walk reads a version stack
/// dry.
///
/// # Examples
///
/// ```
/// use pst_lang::{parse_program, lower_function};
/// use pst_ssa::{place_phis_cytron, rename};
/// let p = parse_program(
///     "fn f(c) { if (c) { x = 1; } else { x = 2; } return x; }"
/// ).unwrap();
/// let l = lower_function(&p.functions[0]).unwrap();
/// let ssa = rename(&l, &place_phis_cytron(&l)).unwrap();
/// assert_eq!(ssa.total_phis(), 1);
/// let x = l.var_id("x").unwrap();
/// // versions: 0 (entry), 1 and 2 (the arms), 3 (the phi)
/// assert_eq!(ssa.version_count[x.index()], 4);
/// ```
pub fn rename(
    function: &LoweredFunction,
    placement: &PhiPlacement,
) -> Result<SsaForm, SsaError> {
    let _span = pst_obs::Span::enter("ssa_rename");
    let cfg = &function.cfg;
    let graph = cfg.graph();
    let n = graph.node_count();
    let nvars = function.var_count();
    let dt: DomTree = dominator_tree(graph, cfg.entry());

    // Seed φ nodes (arguments filled in during the walk).
    let mut phi_nodes: Vec<Vec<PhiNode>> = vec![Vec::new(); n];
    for (var, sites) in placement.iter() {
        for &site in sites {
            let args = graph
                .in_edges(site)
                .iter()
                .map(|&e| (graph.source(e), 0))
                .collect();
            phi_nodes[site.index()].push(PhiNode {
                var,
                result: 0,
                args,
            });
        }
    }

    let mut statements: Vec<Vec<SsaStmt>> = vec![Vec::new(); n];
    let mut version_count: Vec<u32> = vec![1; nvars]; // version 0 exists
    let mut stacks: Vec<Vec<Version>> = vec![vec![0]; nvars];

    // Iterative dominator-tree preorder walk with explicit pop counts.
    enum Action {
        Visit(NodeId),
        Unwind(Vec<(usize, usize)>), // (var, pops)
    }
    let mut work = vec![Action::Visit(cfg.entry())];
    while let Some(action) = work.pop() {
        match action {
            Action::Unwind(pops) => {
                for (v, count) in pops {
                    for _ in 0..count {
                        stacks[v].pop();
                    }
                }
            }
            Action::Visit(node) => {
                let ni = node.index();
                let mut pushed: Vec<(usize, usize)> = Vec::new();
                let push = |stacks: &mut Vec<Vec<Version>>,
                            version_count: &mut Vec<u32>,
                            pushed: &mut Vec<(usize, usize)>,
                            var: VarId| {
                    let fresh = version_count[var.index()];
                    version_count[var.index()] += 1;
                    stacks[var.index()].push(fresh);
                    match pushed.iter_mut().find(|(v, _)| *v == var.index()) {
                        Some((_, c)) => *c += 1,
                        None => pushed.push((var.index(), 1)),
                    }
                    fresh
                };

                // φ definitions first.
                for phi in &mut phi_nodes[ni] {
                    phi.result = push(&mut stacks, &mut version_count, &mut pushed, phi.var);
                }
                // Straight-line statements.
                let mut stmts = Vec::with_capacity(function.blocks[ni].stmts.len());
                for s in &function.blocks[ni].stmts {
                    let mut uses = Vec::with_capacity(s.uses.len());
                    for &u in &s.uses {
                        let version = *stacks[u.index()]
                            .last()
                            .ok_or(SsaError::VersionStackUnderflow(u))?;
                        uses.push((u, version));
                    }
                    let def = s.def.map(|d| {
                        let fresh = push(&mut stacks, &mut version_count, &mut pushed, d);
                        (d, fresh)
                    });
                    stmts.push(SsaStmt { def, uses });
                }
                statements[ni] = stmts;
                // Fill φ arguments of successors.
                for &e in graph.out_edges(node) {
                    let succ = graph.target(e);
                    for phi in &mut phi_nodes[succ.index()] {
                        let current = *stacks[phi.var.index()]
                            .last()
                            .ok_or(SsaError::VersionStackUnderflow(phi.var))?;
                        for arg in phi.args.iter_mut().filter(|(p, _)| *p == node) {
                            arg.1 = current;
                        }
                    }
                }
                // Recurse into dominator-tree children, then unwind.
                work.push(Action::Unwind(pushed));
                for &c in dt.children(node) {
                    work.push(Action::Visit(c));
                }
            }
        }
    }

    Ok(SsaForm {
        phi_nodes,
        statements,
        version_count,
    })
}

/// [`rename`] for hot paths (benchmarks, examples) where the placement is
/// known to belong to the function.
///
/// # Panics
///
/// Panics where [`rename`] would return an error.
pub fn rename_unchecked(function: &LoweredFunction, placement: &PhiPlacement) -> SsaForm {
    rename(function, placement).expect("placement belongs to the function")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place_phis_cytron;
    use pst_lang::{lower_function, parse_function_body};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn ssa_of(src: &str) -> (LoweredFunction, SsaForm) {
        let f = parse_function_body(src).unwrap();
        let l = lower_function(&f).unwrap();
        let p = place_phis_cytron(&l);
        let ssa = rename(&l, &p).unwrap();
        (l, ssa)
    }

    /// Independent semantic check: walk random entry→exit paths carrying
    /// the "current version" of every variable; at every use the renamed
    /// version must equal the path state, and φs must select the argument
    /// of the edge actually taken.
    fn check_random_paths(l: &LoweredFunction, ssa: &SsaForm, seeds: u64) {
        let g = l.cfg.graph();
        for seed in 0..seeds {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut current: Vec<Version> = vec![0; l.var_count()];
            let mut node = l.cfg.entry();
            let mut prev: Option<NodeId> = None;
            for _ in 0..200 {
                // Execute φs: version = argument for the incoming edge.
                if let Some(p) = prev {
                    for phi in &ssa.phi_nodes[node.index()] {
                        let (_, version) = phi
                            .args
                            .iter()
                            .find(|(q, _)| *q == p)
                            .expect("phi has an arg for every predecessor");
                        assert_eq!(
                            *version,
                            current[phi.var.index()],
                            "phi argument mismatch at {node:?} from {p:?} for v{}",
                            phi.var.index()
                        );
                        current[phi.var.index()] = phi.result;
                    }
                }
                // Execute statements.
                for s in &ssa.statements[node.index()] {
                    for &(var, version) in &s.uses {
                        assert_eq!(
                            version,
                            current[var.index()],
                            "use of stale version at {node:?}"
                        );
                    }
                    if let Some((var, version)) = s.def {
                        current[var.index()] = version;
                    }
                }
                if node == l.cfg.exit() {
                    break;
                }
                let succs: Vec<NodeId> = g.successors(node).collect();
                prev = Some(node);
                node = succs[rng.gen_range(0..succs.len())];
            }
        }
    }

    #[test]
    fn diamond_phi_selects_correct_arm() {
        let (l, ssa) = ssa_of("if (c) { x = 1; } else { x = 2; } return x;");
        assert_eq!(ssa.total_phis(), 1);
        check_random_paths(&l, &ssa, 20);
    }

    #[test]
    fn loop_renaming_is_consistent() {
        let (l, ssa) = ssa_of("s = 0; while (n > 0) { s = s + n; n = n - 1; } return s;");
        check_random_paths(&l, &ssa, 50);
    }

    #[test]
    fn unstructured_goto_renaming_is_consistent() {
        let (l, ssa) = ssa_of(
            "if (c) { goto b; } a: x = x + 1; goto c; b: x = x - 1; c: if (x > 0) { goto a; } return x;",
        );
        check_random_paths(&l, &ssa, 80);
    }

    #[test]
    fn switch_renaming_is_consistent() {
        let (l, ssa) = ssa_of(
            "switch (x) { case 0: { y = 1; } case 1: { y = 2; } default: { y = y + 1; } } return y;",
        );
        check_random_paths(&l, &ssa, 40);
    }

    #[test]
    fn every_use_version_is_defined() {
        let (l, ssa) = ssa_of("s = 0; for (i = 0; i < 9; i = i + 1) { s = s + i; } return s;");
        for node in l.cfg.graph().nodes() {
            for s in &ssa.statements[node.index()] {
                for &(var, version) in &s.uses {
                    assert!(version < ssa.version_count[var.index()]);
                }
            }
        }
        check_random_paths(&l, &ssa, 30);
    }

    #[test]
    fn phi_args_cover_every_in_edge() {
        let (l, ssa) = ssa_of("if (c) { x = 1; } else { x = 2; } return x;");
        for node in l.cfg.graph().nodes() {
            for phi in &ssa.phi_nodes[node.index()] {
                assert_eq!(phi.args.len(), l.cfg.graph().in_degree(node));
            }
        }
    }
}
