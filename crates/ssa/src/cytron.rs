//! Baseline φ-placement via iterated dominance frontiers (Cytron,
//! Ferrante, Rosen, Wegman & Zadeck, TOPLAS 1991).
//!
//! For every variable, φ-functions go at the iterated dominance frontier
//! of its definition sites. The CFG entry counts as an implicit definition
//! of every variable (the "undefined initial value"), which also matches
//! the PST algorithm's rule of treating a region's entry as a definition.

use pst_cfg::NodeId;
use pst_dominators::{dominance_frontiers, dominator_tree, iterated_dominance_frontier, Direction};
use pst_lang::{LoweredFunction, VarId};

/// The φ-placement for every variable of a function.
///
/// Two placements are equal iff they put φs for the same variables at the
/// same nodes, so baseline and PST results compare with `==`.
///
/// # Examples
///
/// ```
/// use pst_lang::{parse_program, lower_function};
/// use pst_ssa::place_phis_cytron;
/// let p = parse_program("fn f(n) { s = 0; while (n > 0) { s = s + n; n = n - 1; } return s; }").unwrap();
/// let l = lower_function(&p.functions[0]).unwrap();
/// let phis = place_phis_cytron(&l);
/// let s = l.var_id("s").unwrap();
/// // `s` needs a phi at the loop header.
/// assert_eq!(phis.phis_of(s).len(), 1);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhiPlacement {
    /// `phis[v]` = sorted nodes where variable `v` needs a φ.
    phis: Vec<Vec<NodeId>>,
}

impl PhiPlacement {
    /// Builds a placement from per-variable node lists (sorted internally).
    pub fn from_lists(mut phis: Vec<Vec<NodeId>>) -> Self {
        for p in &mut phis {
            p.sort_unstable();
            p.dedup();
        }
        PhiPlacement { phis }
    }

    /// Sorted φ nodes for `var`.
    pub fn phis_of(&self, var: VarId) -> &[NodeId] {
        &self.phis[var.index()]
    }

    /// Whether `var` needs a φ at `node`.
    pub fn has_phi(&self, var: VarId, node: NodeId) -> bool {
        self.phis[var.index()].binary_search(&node).is_ok()
    }

    /// Number of variables covered.
    pub fn var_count(&self) -> usize {
        self.phis.len()
    }

    /// Total number of φ-functions across all variables.
    pub fn total_phis(&self) -> usize {
        self.phis.iter().map(|p| p.len()).sum()
    }

    /// The variables (with their φ node lists), for iteration.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, &[NodeId])> {
        self.phis
            .iter()
            .enumerate()
            .map(|(i, p)| (VarId::from_index(i), p.as_slice()))
    }
}

/// Places φ-functions for every variable with the classical IDF algorithm.
pub fn place_phis_cytron(function: &LoweredFunction) -> PhiPlacement {
    let _span = pst_obs::Span::enter("phi_cytron");
    let cfg = &function.cfg;
    let dt = dominator_tree(cfg.graph(), cfg.entry());
    let df = dominance_frontiers(cfg.graph(), &dt, Direction::Forward);
    let phis = (0..function.var_count())
        .map(|v| {
            let var = VarId::from_index(v);
            let mut seeds = function.definition_sites(var);
            if !seeds.contains(&cfg.entry()) {
                seeds.push(cfg.entry());
            }
            iterated_dominance_frontier(&df, &seeds)
        })
        .collect();
    PhiPlacement { phis }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pst_lang::{lower_function, parse_function_body};

    fn placement(src: &str) -> (LoweredFunction, PhiPlacement) {
        let f = parse_function_body(src).unwrap();
        let l = lower_function(&f).unwrap();
        let p = place_phis_cytron(&l);
        (l, p)
    }

    #[test]
    fn straight_line_needs_no_phis() {
        let (_, p) = placement("x = 1; y = x + 1; return y;");
        assert_eq!(p.total_phis(), 0);
    }

    #[test]
    fn diamond_join_needs_phi() {
        let (l, p) = placement("if (c) { x = 1; } else { x = 2; } return x;");
        let x = l.var_id("x").unwrap();
        assert_eq!(p.phis_of(x).len(), 1);
        let join = p.phis_of(x)[0];
        assert!(l.cfg.graph().in_degree(join) >= 2);
    }

    #[test]
    fn variable_defined_in_one_arm_still_needs_phi() {
        // Because the entry is an implicit definition.
        let (l, p) = placement("if (c) { x = 1; } return x;");
        let x = l.var_id("x").unwrap();
        assert_eq!(p.phis_of(x).len(), 1);
    }

    #[test]
    fn loop_variable_gets_header_phi() {
        let (l, p) = placement("while (n > 0) { n = n - 1; } return n;");
        let n = l.var_id("n").unwrap();
        assert_eq!(p.phis_of(n).len(), 1);
        // The condition variable `c`... there is none; the header is the
        // only join.
    }

    #[test]
    fn variable_untouched_in_loop_needs_no_phi() {
        let (l, p) = placement("y = 7; while (n > 0) { n = n - 1; } return y;");
        let y = l.var_id("y").unwrap();
        assert!(p.phis_of(y).is_empty());
        let n = l.var_id("n").unwrap();
        assert_eq!(p.phis_of(n).len(), 1);
    }

    #[test]
    fn phi_nodes_are_joins() {
        let (l, p) =
            placement("while (a) { if (b) { x = 1; } else { x = 2; } s = s + x; } return s;");
        for (_, nodes) in p.iter() {
            for &n in nodes {
                assert!(l.cfg.graph().in_degree(n) >= 2, "phi at non-join {n:?}");
            }
        }
        assert!(p.total_phis() > 0);
    }

    #[test]
    fn has_phi_matches_lists() {
        let (l, p) = placement("if (c) { x = 1; } else { x = 2; } return x;");
        for (var, nodes) in p.iter() {
            for node in l.cfg.graph().nodes() {
                assert_eq!(p.has_phi(var, node), nodes.contains(&node));
            }
        }
    }
}
