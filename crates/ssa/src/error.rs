//! Typed errors for SSA construction.

use pst_lang::VarId;

/// Error returned by [`place_phis_pst`](crate::place_phis_pst) and
/// [`rename`](crate::rename) when the inputs are mutually inconsistent —
/// a PST or φ-placement that does not belong to the function's CFG.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SsaError {
    /// Local φ-placement surfaced a join at a collapsed child region. A
    /// child region has a unique entry edge and can never be a join, so
    /// the collapsed graphs do not match the PST.
    JoinAtRegionBoundary,
    /// Local φ-placement surfaced a join at the synthetic region entry,
    /// which has no predecessors — the collapsed graphs are malformed.
    JoinAtSyntheticEntry,
    /// Renaming read a variable's version stack dry: the φ-placement does
    /// not belong to this function.
    VersionStackUnderflow(VarId),
}

impl std::fmt::Display for SsaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SsaError::JoinAtRegionBoundary => {
                write!(
                    f,
                    "phi placement surfaced a join at a collapsed child region; \
                     the PST does not match the CFG"
                )
            }
            SsaError::JoinAtSyntheticEntry => {
                write!(
                    f,
                    "phi placement surfaced a join at the synthetic region entry; \
                     the collapsed graphs are malformed"
                )
            }
            SsaError::VersionStackUnderflow(v) => {
                write!(
                    f,
                    "version stack of variable {} ran dry during renaming; \
                     the phi placement does not match the function",
                    v.index()
                )
            }
        }
    }
}

impl std::error::Error for SsaError {}
