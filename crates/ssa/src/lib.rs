//! SSA construction for the Program Structure Tree workspace.
//!
//! Implements both sides of the paper's §6.1 comparison:
//!
//! * [`place_phis_cytron`] — the classical φ-placement via iterated
//!   dominance frontiers (Cytron et al., TOPLAS 1991), plus full
//!   [`rename`]-ing into SSA form; and
//! * [`place_phis_pst`] — the paper's divide-and-conquer placement: mark
//!   the regions containing assignments, collapse nested regions to single
//!   statements, and solve each marked region locally (Theorem 9). The
//!   [`PstPhiPlacement`] result records how many regions were examined per
//!   variable — the sparsity statistic of the paper's Figure 10.
//!
//! The two placements are provably identical (Theorem 9); the property
//! tests check that on hundreds of generated programs, and the
//! `phi_placement` bench shows where the PST version wins (nested
//! repeat-until loops with quadratic dominance frontiers).
//!
//! # Examples
//!
//! ```
//! use pst_lang::{parse_program, lower_function};
//! use pst_core::{collapse_all, ProgramStructureTree};
//! use pst_ssa::{place_phis_cytron, place_phis_pst, rename};
//!
//! let src = "fn f(c, n) { if (c) { x = 1; } else { x = 2; } while (n > 0) { n = n - 1; } return x + n; }";
//! let program = parse_program(src).unwrap();
//! let lowered = lower_function(&program.functions[0]).unwrap();
//!
//! let baseline = place_phis_cytron(&lowered);
//! let pst = ProgramStructureTree::build(&lowered.cfg);
//! let collapsed = collapse_all(&lowered.cfg, &pst);
//! let sparse = place_phis_pst(&lowered, &pst, &collapsed).unwrap();
//! assert_eq!(baseline, sparse.placement);
//!
//! let ssa = rename(&lowered, &baseline).unwrap();
//! assert!(ssa.total_phis() >= 2); // x at the if-join, n at the loop header
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cytron;
mod error;
mod pst_phi;
mod rename;

pub use cytron::{place_phis_cytron, PhiPlacement};
pub use error::SsaError;
pub use pst_phi::{place_phis_pst, place_phis_pst_unchecked, PstPhiPlacement};
pub use rename::{rename, rename_unchecked, PhiNode, SsaForm, SsaStmt, Version};
