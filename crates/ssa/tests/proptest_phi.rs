//! Property tests: PST-based φ-placement equals the IDF baseline
//! (Theorem 9) on generated programs, and renaming stays consistent.

use proptest::prelude::*;
use pst_core::{collapse_all, ProgramStructureTree};
use pst_ssa::{place_phis_cytron, place_phis_pst, rename};
use pst_workloads::{generate_function, ProgramGenConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(250))]

    #[test]
    fn pst_placement_equals_cytron(seed in 0u64..100_000, goto in 0usize..2) {
        let config = ProgramGenConfig {
            target_stmts: 60,
            goto_prob: if goto == 1 { 0.12 } else { 0.0 },
            ..Default::default()
        };
        let f = generate_function("p", &config, seed);
        let l = pst_lang::lower_function(&f).unwrap();
        let baseline = place_phis_cytron(&l);
        let pst = ProgramStructureTree::build(&l.cfg);
        let collapsed = collapse_all(&l.cfg, &pst);
        let sparse = place_phis_pst(&l, &pst, &collapsed).unwrap();
        prop_assert_eq!(&baseline, &sparse.placement);
        // Sparsity accounting is sane.
        for v in 0..l.var_count() {
            prop_assert!(sparse.regions_examined[v] >= 1);
            prop_assert!(sparse.regions_examined[v] <= sparse.total_regions);
        }
    }

    #[test]
    fn renaming_has_well_formed_phis(seed in 0u64..20_000) {
        let f = generate_function("p", &ProgramGenConfig::default(), seed);
        let l = pst_lang::lower_function(&f).unwrap();
        let placement = place_phis_cytron(&l);
        let ssa = rename(&l, &placement).unwrap();
        for node in l.cfg.graph().nodes() {
            for phi in &ssa.phi_nodes[node.index()] {
                prop_assert_eq!(phi.args.len(), l.cfg.graph().in_degree(node));
                for &(_, version) in &phi.args {
                    prop_assert!(version < ssa.version_count[phi.var.index()]);
                }
            }
        }
    }
}
