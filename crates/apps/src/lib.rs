//! Applications of the Program Structure Tree (paper §6.3 and the parallel
//! remarks of §6).
//!
//! The paper closes by sketching PST-driven algorithm designs beyond SSA
//! and data flow; this crate implements them:
//!
//! * [`dominator_tree_via_pst`] — divide-and-conquer dominator computation:
//!   local dominator trees per collapsed region, spliced through the
//!   nesting structure (§6.3). Produces exactly the Lengauer–Tarjan tree.
//! * [`place_phis_pst_parallel`] — per-region/per-variable φ-placement
//!   fanned out over crossbeam scoped threads; no combining needed, the
//!   property the paper highlights about this problem.
//!
//! Incremental PST maintenance (also anticipated in §6.3) lives in
//! [`pst_core::insert_edge`], next to the tree internals it splices.
//!
//! # Examples
//!
//! ```
//! use pst_cfg::parse_edge_list;
//! use pst_core::{collapse_all, ProgramStructureTree};
//! use pst_apps::dominator_tree_via_pst;
//! let cfg = parse_edge_list("0->1 1->2 2->1 1->3").unwrap();
//! let pst = ProgramStructureTree::build(&cfg);
//! let collapsed = collapse_all(&cfg, &pst);
//! let dt = dominator_tree_via_pst(&cfg, &pst, &collapsed);
//! assert!(dt.dominates(pst_cfg::NodeId::from_index(1), pst_cfg::NodeId::from_index(2)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod domtree;
mod parallel;

pub use domtree::dominator_tree_via_pst;
pub use parallel::place_phis_pst_parallel;
