//! Parallel divide-and-conquer φ-placement (paper §6.1).
//!
//! "The PST can even be distributed across the local memories of a
//! parallel machine, and computations in SESE regions can be performed in
//! parallel … the PST can be used to exploit parallelism in compilation
//! since it tells us how to divide the work and how to combine partial
//! results."
//!
//! Two embarrassingly parallel phases over `std::thread::scope` workers:
//! region analyses (dominator trees + frontiers of every collapsed region)
//! are computed concurrently, then variables are partitioned across
//! threads, each running the marking + local-IDF steps against the shared
//! read-only analyses. No combining is needed (the paper's observation
//! about this problem), so the result is identical to the sequential
//! placement — asserted by the tests.

use pst_cfg::{Graph, NodeId};
use pst_core::{CollapsedNode, CollapsedRegion, ProgramStructureTree, RegionId};
use pst_dominators::{dominance_frontiers, dominator_tree, iterated_dominance_frontier, Direction};
use pst_lang::LoweredFunction;
use pst_ssa::{PhiPlacement, PstPhiPlacement};

struct RegionAnalysis {
    entry: NodeId,
    frontiers: Vec<Vec<NodeId>>,
}

fn analyze_region(mini: &CollapsedRegion) -> RegionAnalysis {
    let mut graph: Graph = mini.graph.clone();
    let entry = graph.add_node();
    graph.add_edge(entry, mini.head);
    let dt = dominator_tree(&graph, entry);
    let frontiers = dominance_frontiers(&graph, &dt, Direction::Forward);
    RegionAnalysis { entry, frontiers }
}

/// Places φ-functions for every variable, running region analyses and
/// per-variable placement on `threads` worker threads.
///
/// The result equals [`pst_ssa::place_phis_pst`] (and hence, by
/// Theorem 9, [`pst_ssa::place_phis_cytron`]).
///
/// # Panics
///
/// Panics if `threads == 0`.
///
/// # Examples
///
/// ```
/// use pst_core::{collapse_all, ProgramStructureTree};
/// use pst_apps::place_phis_pst_parallel;
/// use pst_ssa::place_phis_cytron;
/// let p = pst_lang::parse_program(
///     "fn f(n) { s = 0; while (n > 0) { s = s + n; n = n - 1; } return s; }"
/// ).unwrap();
/// let l = pst_lang::lower_function(&p.functions[0]).unwrap();
/// let pst = ProgramStructureTree::build(&l.cfg);
/// let collapsed = collapse_all(&l.cfg, &pst);
/// let par = place_phis_pst_parallel(&l, &pst, &collapsed, 4);
/// assert_eq!(par.placement, place_phis_cytron(&l));
/// ```
pub fn place_phis_pst_parallel(
    function: &LoweredFunction,
    pst: &ProgramStructureTree,
    collapsed: &[CollapsedRegion],
    threads: usize,
) -> PstPhiPlacement {
    assert!(threads > 0, "at least one worker thread required");
    let total_regions = pst.region_count();

    // Phase A: analyze every region concurrently (static chunking).
    let mut analyses: Vec<Option<RegionAnalysis>> = (0..total_regions).map(|_| None).collect();
    {
        let chunk = total_regions.div_ceil(threads);
        let mut slices: Vec<&mut [Option<RegionAnalysis>]> = Vec::new();
        let mut rest = analyses.as_mut_slice();
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            slices.push(head);
            rest = tail;
        }
        std::thread::scope(|scope| {
            let mut offset = 0usize;
            for slice in slices {
                let base = offset;
                offset += slice.len();
                scope.spawn(move || {
                    for (i, slot) in slice.iter_mut().enumerate() {
                        *slot = Some(analyze_region(&collapsed[base + i]));
                    }
                });
            }
        });
    }
    let analyses: Vec<RegionAnalysis> = analyses
        .into_iter()
        .map(|a| a.expect("all regions analyzed"))
        .collect();

    // Shared def-site table (one sequential pass, cheap).
    let nvars = function.var_count();
    let mut def_sites: Vec<Vec<NodeId>> = vec![Vec::new(); nvars];
    for node in function.cfg.graph().nodes() {
        for s in &function.blocks[node.index()].stmts {
            if let Some(d) = s.def {
                if def_sites[d.index()].last() != Some(&node) {
                    def_sites[d.index()].push(node);
                }
            }
        }
    }

    // Phase B: variables in parallel against the shared analyses.
    let mut phis: Vec<Vec<NodeId>> = vec![Vec::new(); nvars];
    let mut examined: Vec<usize> = vec![0; nvars];
    {
        let analyses = &analyses;
        let def_sites = &def_sites;
        let chunk = nvars.div_ceil(threads).max(1);
        let phi_chunks: Vec<&mut [Vec<NodeId>]> = phis.chunks_mut(chunk).collect();
        let exam_chunks: Vec<&mut [usize]> = examined.chunks_mut(chunk).collect();
        std::thread::scope(|scope| {
            for (ci, (phi_slice, exam_slice)) in phi_chunks.into_iter().zip(exam_chunks).enumerate()
            {
                scope.spawn(move || {
                    for (off, (phi_slot, exam_slot)) in
                        phi_slice.iter_mut().zip(exam_slice.iter_mut()).enumerate()
                    {
                        let v = ci * chunk + off;
                        let (p, e) =
                            place_one_variable(function, pst, collapsed, analyses, &def_sites[v]);
                        *phi_slot = p;
                        *exam_slot = e;
                    }
                });
            }
        });
    }

    PstPhiPlacement {
        placement: PhiPlacement::from_lists(phis),
        regions_examined: examined,
        total_regions,
    }
}

/// The sequential per-variable step: mark, collapse, solve locally.
fn place_one_variable(
    function: &LoweredFunction,
    pst: &ProgramStructureTree,
    collapsed: &[CollapsedRegion],
    analyses: &[RegionAnalysis],
    raw_defs: &[NodeId],
) -> (Vec<NodeId>, usize) {
    let mut def_nodes: Vec<NodeId> = raw_defs.to_vec();
    if !def_nodes.contains(&function.cfg.entry()) {
        def_nodes.push(function.cfg.entry());
    }
    let mut marked: Vec<RegionId> = Vec::new();
    let mut is_marked = vec![false; pst.region_count()];
    for &d in &def_nodes {
        let mut r = Some(pst.region_of_node(d));
        while let Some(region) = r {
            if is_marked[region.index()] {
                break;
            }
            is_marked[region.index()] = true;
            marked.push(region);
            r = pst.parent(region);
        }
    }
    let mut defines_here = vec![false; function.cfg.node_count()];
    for &d in &def_nodes {
        defines_here[d.index()] = true;
    }

    let mut result = Vec::new();
    for &region in &marked {
        let mini = &collapsed[region.index()];
        let analysis = &analyses[region.index()];
        let mut seeds: Vec<NodeId> = vec![analysis.entry];
        for (i, &member) in mini.members.iter().enumerate() {
            let is_def = match member {
                CollapsedNode::Interior(n) => defines_here[n.index()],
                CollapsedNode::Child(c) => is_marked[c.index()],
            };
            if is_def {
                seeds.push(NodeId::from_index(i));
            }
        }
        for m in iterated_dominance_frontier(&analysis.frontiers, &seeds) {
            if let Some(&CollapsedNode::Interior(n)) = mini.members.get(m.index()) {
                result.push(n);
            }
        }
    }
    (result, marked.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pst_core::collapse_all;
    use pst_lang::{lower_function, parse_function_body};
    use pst_ssa::{place_phis_cytron, place_phis_pst};

    fn check(src: &str, threads: usize) {
        let l = lower_function(&parse_function_body(src).unwrap()).unwrap();
        let pst = ProgramStructureTree::build(&l.cfg);
        let collapsed = collapse_all(&l.cfg, &pst);
        let par = place_phis_pst_parallel(&l, &pst, &collapsed, threads);
        let seq = place_phis_pst(&l, &pst, &collapsed).unwrap();
        assert_eq!(par.placement, seq.placement, "{src} with {threads} threads");
        assert_eq!(par.regions_examined, seq.regions_examined);
        assert_eq!(par.placement, place_phis_cytron(&l));
    }

    #[test]
    fn matches_sequential_on_loops_and_branches() {
        let src = "s = 0; while (n > 0) { if (n % 2 == 0) { s = s + n; } else { t = t + 1; } n = n - 1; } return s + t;";
        for threads in [1, 2, 4, 7] {
            check(src, threads);
        }
    }

    #[test]
    fn matches_sequential_on_unstructured_code() {
        check(
            "if (c) { goto b; } a: x = x + 1; goto c; b: x = x - 1; c: if (x > 0) { goto a; } return x;",
            3,
        );
    }

    #[test]
    fn more_threads_than_variables_is_fine() {
        check("x = 1; return x;", 16);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_panics() {
        let l = lower_function(&parse_function_body("x = 1; return x;").unwrap()).unwrap();
        let pst = ProgramStructureTree::build(&l.cfg);
        let collapsed = collapse_all(&l.cfg, &pst);
        let _ = place_phis_pst_parallel(&l, &pst, &collapsed, 0);
    }
}
