//! Divide-and-conquer dominator computation over the PST (paper §6.3).
//!
//! "It is not difficult to design such an algorithm for computing the
//! dominator tree of a control flow graph: first, build the dominator tree
//! of each SESE region, and then piece together the local trees using
//! global structure (nesting) information in the PST."
//!
//! The splice rule follows from the SESE conditions. For a node `n`
//! interior to region `R`, compute the dominator tree of `R`'s *collapsed*
//! graph (with a synthetic entry feeding the region head). Then
//!
//! * if `n`'s local idom is another interior node `m`, the global idom is
//!   `m`;
//! * if it is a collapsed child region `c`, every path to `n` runs through
//!   all of `c`, and the last node common to those paths is the source of
//!   `c`'s exit edge — the global idom;
//! * if it is the synthetic entry (only possible for the region head), the
//!   global idom is the source of `R`'s entry edge, which lives in the
//!   parent region and is resolved there.
//!
//! The result is bit-for-bit the Lengauer–Tarjan tree; the property tests
//! check that on random CFGs and generated programs.

use pst_cfg::{Cfg, Graph, NodeId};
use pst_core::{CollapsedNode, CollapsedRegion, ProgramStructureTree};
use pst_dominators::{dominator_tree, DomTree};

/// Computes the dominator tree of `cfg` region by region over the PST.
///
/// `collapsed` must come from [`pst_core::collapse_all`] on the same
/// CFG/PST pair.
///
/// # Examples
///
/// ```
/// use pst_cfg::parse_edge_list;
/// use pst_core::{collapse_all, ProgramStructureTree};
/// use pst_dominators::dominator_tree;
/// use pst_apps::dominator_tree_via_pst;
/// let cfg = parse_edge_list("0->1 1->2 2->1 1->3").unwrap();
/// let pst = ProgramStructureTree::build(&cfg);
/// let collapsed = collapse_all(&cfg, &pst);
/// let ours = dominator_tree_via_pst(&cfg, &pst, &collapsed);
/// let lt = dominator_tree(cfg.graph(), cfg.entry());
/// for n in cfg.graph().nodes() {
///     assert_eq!(ours.idom(n), lt.idom(n));
/// }
/// ```
pub fn dominator_tree_via_pst(
    cfg: &Cfg,
    pst: &ProgramStructureTree,
    collapsed: &[CollapsedRegion],
) -> DomTree {
    let graph = cfg.graph();
    let n = graph.node_count();
    let mut idom: Vec<Option<NodeId>> = vec![None; n];

    for region in pst.regions() {
        let mini = &collapsed[region.index()];
        if mini.graph.node_count() == 0 {
            continue;
        }
        // Local dominators on the collapsed graph + synthetic entry.
        let mut local: Graph = mini.graph.clone();
        let entry = local.add_node();
        local.add_edge(entry, mini.head);
        let lt = dominator_tree(&local, entry);

        // The node "every path through a collapsed member passes last".
        let last_node_of = |member: CollapsedNode| -> NodeId {
            match member {
                CollapsedNode::Interior(m) => m,
                CollapsedNode::Child(c) => {
                    let exit = pst.exit_edge(c).expect("canonical region has an exit");
                    graph.source(exit)
                }
            }
        };

        for (mi, &member) in mini.members.iter().enumerate() {
            let CollapsedNode::Interior(node) = member else {
                continue; // children are resolved in their own region
            };
            let local_idom = lt
                .idom(NodeId::from_index(mi))
                .expect("interior nodes are dominated by the synthetic entry");
            idom[node.index()] = if local_idom == entry {
                // Only the region head: global idom is the entry edge's
                // source (the CFG entry has none).
                pst.entry_edge(region).map(|e| graph.source(e))
            } else {
                Some(last_node_of(mini.members[local_idom.index()]))
            };
        }
    }

    DomTree::from_immediate_dominators(cfg.entry(), idom, vec![true; n])
}

#[cfg(test)]
mod tests {
    use super::*;
    use pst_core::collapse_all;
    use pst_dominators::dominator_tree;

    fn check(desc: &str) {
        let cfg = pst_cfg::parse_edge_list(desc).unwrap();
        let pst = ProgramStructureTree::build(&cfg);
        let collapsed = collapse_all(&cfg, &pst);
        let ours = dominator_tree_via_pst(&cfg, &pst, &collapsed);
        let lt = dominator_tree(cfg.graph(), cfg.entry());
        for n in cfg.graph().nodes() {
            assert_eq!(ours.idom(n), lt.idom(n), "{desc}: idom of {n}");
        }
    }

    #[test]
    fn matches_lt_on_chains_and_diamonds() {
        check("0->1 1->2 2->3");
        check("0->1 0->2 1->3 2->3");
        check("0->1 1->2 1->3 2->4 3->4 4->5");
    }

    #[test]
    fn matches_lt_on_loops() {
        check("0->1 1->2 2->1 1->3");
        check("0->1 1->2 2->1 2->3");
        check("0->1 1->2 2->3 3->2 3->1 1->4");
        check("0->1 1->1 1->2");
    }

    #[test]
    fn matches_lt_on_irreducible_graphs() {
        check("0->1 0->2 1->2 2->1 1->3 2->3");
        check("0->1 0->3 1->2 2->3 3->4 4->1 2->5 4->5");
    }

    #[test]
    fn matches_lt_on_figure1_like_graph() {
        check("0->1 1->2 2->3 2->4 3->5 4->5 5->6 6->7 7->6 6->8 8->9 8->10 9->11 10->11 11->8 8->12 12->13");
    }

    #[test]
    fn dominance_queries_work_on_spliced_tree() {
        let cfg = pst_cfg::parse_edge_list("0->1 1->2 2->1 1->3").unwrap();
        let pst = ProgramStructureTree::build(&cfg);
        let collapsed = collapse_all(&cfg, &pst);
        let dt = dominator_tree_via_pst(&cfg, &pst, &collapsed);
        let n = |i| NodeId::from_index(i);
        assert!(dt.dominates(n(1), n(2)));
        assert!(!dt.dominates(n(2), n(3)));
        assert_eq!(dt.depth(n(3)), 2);
    }
}
