//! Property tests for the §6.3 applications.

use proptest::prelude::*;
use pst_core::{collapse_all, ProgramStructureTree};
use pst_dominators::dominator_tree;
use pst_workloads::{generate_function, random_cfg, ProgramGenConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Divide-and-conquer dominators equal Lengauer–Tarjan on random CFGs.
    #[test]
    fn pst_dominators_match_lt(n in 3usize..30, extra in 0usize..30, seed in 0u64..10_000) {
        let cfg = random_cfg(n, extra, seed).unwrap();
        let pst = ProgramStructureTree::build(&cfg);
        let collapsed = collapse_all(&cfg, &pst);
        let ours = pst_apps::dominator_tree_via_pst(&cfg, &pst, &collapsed);
        let lt = dominator_tree(cfg.graph(), cfg.entry());
        for node in cfg.graph().nodes() {
            prop_assert_eq!(ours.idom(node), lt.idom(node), "idom of {}", node);
        }
    }

    /// Parallel φ-placement equals the sequential placement on generated
    /// programs, across thread counts.
    #[test]
    fn parallel_phis_match_sequential(seed in 0u64..5_000, threads in 1usize..6) {
        let config = ProgramGenConfig {
            target_stmts: 40,
            goto_prob: 0.08,
            ..Default::default()
        };
        let f = generate_function("p", &config, seed);
        let l = pst_lang::lower_function(&f).unwrap();
        let pst = ProgramStructureTree::build(&l.cfg);
        let collapsed = collapse_all(&l.cfg, &pst);
        let par = pst_apps::place_phis_pst_parallel(&l, &pst, &collapsed, threads);
        let seq = pst_ssa::place_phis_pst(&l, &pst, &collapsed).unwrap();
        prop_assert_eq!(&par.placement, &seq.placement);
        prop_assert_eq!(&par.regions_examined, &seq.regions_examined);
    }
}
