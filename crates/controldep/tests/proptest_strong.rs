//! Property tests for the strong-control-dependence subsystem.
//!
//! The headline theorem: NTSCD collapses to classic control dependence
//! exactly on the guaranteed-termination class of CFGs. On a valid
//! Definition-1 CFG every node reaches the exit, so "every maximal
//! path reaches exit" is equivalent to *acyclicity* — any cycle can be
//! pumped into an infinite maximal path (see docs/CONTROLDEP.md). We
//! therefore canonicalize random DAGs (canonicalization only adds
//! entry/exit plumbing edges, never a cycle) and assert the relations
//! coincide node-for-node. On general CFGs we assert the documented
//! containments instead: classic deps that postdominance grants are a
//! projection NTSCD can disagree with only around loops, and DOD is
//! empty on every valid CFG.

use proptest::prelude::*;
use pst_cfg::{canonicalize, CanonicalizeOptions, Graph};
use pst_controldep::{Dod, StrongControlDeps};

/// Deterministic LCG so the DAG generator needs no rand dependency.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *state >> 33
}

/// A random DAG: nodes `0..n`, edges only forward (`i -> j`, `i < j`),
/// so every maximal path is finite.
fn random_dag(n: usize, extra: usize, seed: u64) -> Graph {
    let mut state = seed.wrapping_add(0x9e3779b97f4a7c15);
    let mut g = Graph::new();
    let nodes = g.add_nodes(n);
    // A spine keeps most of the graph reachable.
    for i in 0..n - 1 {
        if next(&mut state) % 4 != 0 {
            g.add_edge(nodes[i], nodes[i + 1]);
        }
    }
    for _ in 0..extra {
        let i = (next(&mut state) as usize) % (n - 1);
        let j = i + 1 + (next(&mut state) as usize) % (n - i - 1);
        g.add_edge(nodes[i], nodes[j]);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// On canonicalized acyclic CFGs — the class where every maximal
    /// path reaches the exit — NTSCD and classic control dependence
    /// are the same relation, so the strong subsystem degrades
    /// gracefully to the paper's weak one.
    #[test]
    fn ntscd_equals_classic_on_guaranteed_termination_cfgs(
        n in 2usize..20,
        extra in 0usize..30,
        seed in 0u64..10_000,
    ) {
        let dag = random_dag(n, extra, seed);
        let entry = dag.nodes().next().expect("nonempty");
        let canon = canonicalize(&dag, entry, &CanonicalizeOptions::default())
            .expect("DAGs always canonicalize");
        let cfg = &canon.cfg;
        let strong = StrongControlDeps::of_cfg(cfg);
        let classic = strong.classic().expect("CFG input has classic deps");
        for node in cfg.graph().nodes() {
            prop_assert_eq!(
                strong.ntscd().deps_of(node),
                classic.deps_of(node),
                "node {:?}", node
            );
        }
        prop_assert!(strong.dod().is_empty());
    }

    /// On arbitrary valid CFGs (loops included) DOD has no witnesses:
    /// a witness pins both orders of a pair inside one SCC, which the
    /// always-reachable exit makes impossible.
    #[test]
    fn dod_is_empty_on_valid_cfgs(n in 3usize..24, extra in 0usize..24, seed in 0u64..10_000) {
        let cfg = pst_workloads::random_cfg(n, extra, seed).unwrap();
        let dod = Dod::compute(cfg.graph());
        prop_assert!(dod.is_complete());
        prop_assert!(dod.is_empty(), "witnesses: {:?}", dod.witnesses());
    }

    /// The strong-region partition groups nodes by identical NTSCD
    /// sets — re-derive it definitionally on random CFGs.
    #[test]
    fn strong_regions_match_ntscd_sets(n in 3usize..20, extra in 0usize..20, seed in 0u64..5_000) {
        let cfg = pst_workloads::random_cfg(n, extra, seed).unwrap();
        let strong = StrongControlDeps::of_cfg(&cfg);
        for a in cfg.graph().nodes() {
            for b in cfg.graph().nodes() {
                let same_sets = strong.ntscd().deps_of(a) == strong.ntscd().deps_of(b);
                prop_assert_eq!(strong.regions().same_region(a, b), same_sets);
            }
        }
    }
}
