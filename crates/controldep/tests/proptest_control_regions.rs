//! Property tests: the linear-time control-region algorithm (node-expanded
//! cycle equivalence, Theorems 7–8) agrees with the FOW hashing and CFS
//! refinement baselines on random CFGs and on generated programs.

use proptest::prelude::*;
use pst_controldep::{cfs_control_regions, fow_control_regions, linear_control_regions};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn all_three_algorithms_agree(n in 3usize..24, extra in 0usize..24, seed in 0u64..10_000) {
        let cfg = pst_workloads::random_cfg(n, extra, seed).unwrap();
        let fow = fow_control_regions(&cfg);
        let cfs = cfs_control_regions(&cfg);
        let fast = linear_control_regions(&cfg);
        prop_assert_eq!(&fow, &cfs);
        prop_assert_eq!(&fow, &fast);
    }

    #[test]
    fn agree_on_generated_programs(seed in 0u64..500) {
        let f = pst_workloads::generate_function(
            "p",
            &pst_workloads::ProgramGenConfig { goto_prob: 0.1, ..Default::default() },
            seed,
        );
        let lowered = pst_lang::lower_function(&f).unwrap();
        let fow = fow_control_regions(&lowered.cfg);
        let fast = linear_control_regions(&lowered.cfg);
        prop_assert_eq!(&fow, &fast);
    }
}
