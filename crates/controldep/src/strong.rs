//! The `StrongControlDeps` artifact: NTSCD + DOD + classic node-level
//! control dependence + a strong-region partition.
//!
//! The paper's Theorem 7 partitions nodes into *control regions* —
//! classes with identical **classic** (termination-insensitive)
//! control-dependence sets — in linear time via cycle equivalence.
//! This module builds the strong analogue: nodes grouped by identical
//! **NTSCD** sets. On acyclic graphs the two partitions coincide; on
//! graphs with loops the strong partition refines the program by
//! termination behaviour (code after a possibly-diverging loop lands
//! in a different strong region than code before it, because it
//! strongly depends on the loop header).
//!
//! [`StrongControlDeps`] is the artifact the rest of the workspace
//! consumes: `pst-analysis` mines it for the `PST-C1xx` lint family,
//! `pst serve` ships it as the `controldep` method, `pst-verify`
//! re-derives every piece through naive path oracles, and `pst-perf`
//! times its phases against the Theorem-7 pipeline.

use std::collections::HashMap;

use pst_cfg::{Cfg, Graph, NodeId};
use pst_core::ControlRegions;
use pst_dominators::{dominator_tree_in, Direction};

use crate::dod::{Dod, DEFAULT_DOD_BUDGET};
use crate::ntscd::Ntscd;

/// Classic Ferrante–Ottenstein–Warren control dependence at node
/// granularity: `n` depends on branch `p` iff some successor of `p`
/// is postdominated by `n` while `p` itself is not *strictly*
/// postdominated by `n`. Unlike [`crate::ControlDependence`] (the
/// edge-level Theorem-7 baseline over the strongly connected closure)
/// this is the textbook relation on the plain graph — the weak
/// counterpart the `PST-C1xx` lints compare NTSCD against.
///
/// # Examples
///
/// ```
/// use pst_cfg::{parse_edge_list, NodeId};
/// use pst_controldep::ClassicControlDeps;
/// let cfg = parse_edge_list("0->1 1->2 2->1 1->3").unwrap();
/// let classic = ClassicControlDeps::compute(&cfg);
/// let n = |i| NodeId::from_index(i);
/// assert_eq!(classic.deps_of(n(2)), &[n(1)]); // loop body
/// assert_eq!(classic.deps_of(n(1)), &[n(1)]); // header, on itself
/// assert_eq!(classic.deps_of(n(3)), &[]);     // exit: weakly unconditional
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClassicControlDeps {
    /// `deps[n]` = branch nodes `n` is classically dependent on, sorted.
    deps: Vec<Vec<NodeId>>,
}

impl ClassicControlDeps {
    /// Computes the relation from the postdominator tree of `cfg`
    /// (root = exit, no closure edge) via the standard runner walk:
    /// for each edge `(u, v)`, every node on the pdom-tree path from
    /// `v` up to, excluding, `ipdom(u)` depends on `u`.
    pub fn compute(cfg: &Cfg) -> ClassicControlDeps {
        let _span = pst_obs::Span::enter("classic_cd");
        let graph = cfg.graph();
        let pdom = dominator_tree_in(graph, cfg.exit(), Direction::Backward);
        let mut deps: Vec<Vec<NodeId>> = vec![Vec::new(); graph.node_count()];
        for e in graph.edges() {
            let (u, v) = graph.endpoints(e);
            if !pdom.is_reachable(u) || !pdom.is_reachable(v) {
                continue;
            }
            let stop = pdom.idom(u);
            let mut runner = Some(v);
            while let Some(r) = runner {
                if Some(r) == stop {
                    break;
                }
                deps[r.index()].push(u);
                if Some(r) == pdom.idom(r) {
                    break; // defensive: cannot happen in a well-formed tree
                }
                runner = pdom.idom(r);
            }
        }
        for d in &mut deps {
            d.sort_unstable();
            d.dedup();
        }
        ClassicControlDeps { deps }
    }

    /// The branch nodes `node` classically depends on, sorted ascending.
    pub fn deps_of(&self, node: NodeId) -> &[NodeId] {
        &self.deps[node.index()]
    }

    /// Whether `node` is classically control dependent on `branch`.
    pub fn depends_on(&self, node: NodeId, branch: NodeId) -> bool {
        self.deps[node.index()].binary_search(&branch).is_ok()
    }

    /// Total number of `(node, branch)` pairs in the relation.
    pub fn relation_size(&self) -> usize {
        self.deps.iter().map(Vec::len).sum()
    }
}

/// The complete strong-control-dependence artifact of one graph.
///
/// # Examples
///
/// On a `while` loop the exit is strongly — but not weakly — dependent
/// on the header, and the strong regions separate it from the entry:
///
/// ```
/// use pst_cfg::{parse_edge_list, NodeId};
/// use pst_controldep::StrongControlDeps;
/// let cfg = parse_edge_list("0->1 1->2 2->1 1->3").unwrap();
/// let strong = StrongControlDeps::of_cfg(&cfg);
/// let n = |i| NodeId::from_index(i);
/// assert!(strong.ntscd().depends_on(n(3), n(1)));
/// assert!(!strong.classic().unwrap().depends_on(n(3), n(1)));
/// assert!(!strong.regions().same_region(n(0), n(3)));
/// assert!(strong.dod().is_empty()); // valid CFGs never have DOD
/// ```
#[derive(Clone, Debug)]
pub struct StrongControlDeps {
    ntscd: Ntscd,
    dod: Dod,
    /// Present only when the input had an exit node (CFG inputs);
    /// raw digraphs have no postdominance to compute it from.
    classic: Option<ClassicControlDeps>,
    /// Strong regions: nodes grouped by identical NTSCD sets — the
    /// non-termination-sensitive analogue of the paper's Theorem 7.
    regions: ControlRegions,
}

impl StrongControlDeps {
    /// Builds the artifact for a valid CFG: NTSCD and DOD on its
    /// graph, plus the classic relation from its postdominator tree.
    pub fn of_cfg(cfg: &Cfg) -> StrongControlDeps {
        let _span = pst_obs::Span::enter("strong_controldep");
        let classic = Some(ClassicControlDeps::compute(cfg));
        StrongControlDeps::build(cfg.graph(), classic, DEFAULT_DOD_BUDGET)
    }

    /// Builds the artifact for an arbitrary digraph (no exit, so no
    /// classic relation) — the form `pst fuzz` and graph lints use.
    pub fn of_graph(graph: &Graph) -> StrongControlDeps {
        let _span = pst_obs::Span::enter("strong_controldep");
        StrongControlDeps::build(graph, None, DEFAULT_DOD_BUDGET)
    }

    /// [`StrongControlDeps::of_graph`] with an explicit DOD work
    /// budget (see [`Dod::compute_budgeted`]).
    pub fn of_graph_budgeted(graph: &Graph, dod_budget: u64) -> StrongControlDeps {
        let _span = pst_obs::Span::enter("strong_controldep");
        StrongControlDeps::build(graph, None, dod_budget)
    }

    fn build(
        graph: &Graph,
        classic: Option<ClassicControlDeps>,
        dod_budget: u64,
    ) -> StrongControlDeps {
        let ntscd = Ntscd::compute(graph);
        let dod = Dod::compute_budgeted(graph, dod_budget);
        let regions = strong_regions(&ntscd);
        pst_obs::counter!("strong_regions_built");
        pst_obs::gauge!("strong_region_classes", regions.num_classes() as u64);
        for node in graph.nodes() {
            pst_obs::histogram!("ntscd_dep_set_size", ntscd.deps_of(node).len() as u64);
        }
        StrongControlDeps {
            ntscd,
            dod,
            classic,
            regions,
        }
    }

    /// Rebuilds from parts — `pst-verify`'s fault injection swaps one
    /// field and re-wraps. The regions are recomputed from `ntscd` so
    /// the pair can never disagree.
    pub fn from_parts(ntscd: Ntscd, dod: Dod, classic: Option<ClassicControlDeps>) -> Self {
        let regions = strong_regions(&ntscd);
        StrongControlDeps {
            ntscd,
            dod,
            classic,
            regions,
        }
    }

    /// The NTSCD relation.
    pub fn ntscd(&self) -> &Ntscd {
        &self.ntscd
    }

    /// The DOD witness set.
    pub fn dod(&self) -> &Dod {
        &self.dod
    }

    /// The classic node-level relation, when the input was a CFG.
    pub fn classic(&self) -> Option<&ClassicControlDeps> {
        self.classic.as_ref()
    }

    /// The strong-region partition (identical NTSCD sets).
    pub fn regions(&self) -> &ControlRegions {
        &self.regions
    }

    /// Nodes strongly dependent on `branch` that are **not** weakly
    /// dependent on it — code whose execution hinges on `branch`'s
    /// loop terminating. Empty (for every branch) on acyclic graphs,
    /// and always empty when the classic relation is absent.
    pub fn termination_sensitive_deps(&self, branch: NodeId) -> Vec<NodeId> {
        let Some(classic) = &self.classic else {
            return Vec::new();
        };
        (0..self.ntscd.node_count())
            .map(NodeId::from_index)
            .filter(|&n| self.ntscd.depends_on(n, branch) && !classic.depends_on(n, branch))
            .collect()
    }
}

/// Groups nodes with identical NTSCD dependence sets into regions.
fn strong_regions(ntscd: &Ntscd) -> ControlRegions {
    let mut interner: HashMap<&[NodeId], u32> = HashMap::new();
    let mut classes = Vec::with_capacity(ntscd.node_count());
    for i in 0..ntscd.node_count() {
        let set = ntscd.deps_of(NodeId::from_index(i));
        let next = interner.len() as u32;
        classes.push(*interner.entry(set).or_insert(next));
    }
    ControlRegions::from_classes(classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pst_cfg::parse_edge_list;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn classic_on_a_diamond() {
        let cfg = parse_edge_list("0->1 0->2 1->3 2->3").unwrap();
        let classic = ClassicControlDeps::compute(&cfg);
        assert_eq!(classic.deps_of(n(1)), &[n(0)]);
        assert_eq!(classic.deps_of(n(2)), &[n(0)]);
        assert_eq!(classic.deps_of(n(0)), &[]);
        assert_eq!(classic.deps_of(n(3)), &[]);
        assert_eq!(classic.relation_size(), 2);
    }

    #[test]
    fn classic_loop_header_depends_on_itself_but_exit_does_not() {
        let cfg = parse_edge_list("0->1 1->2 2->1 1->3").unwrap();
        let classic = ClassicControlDeps::compute(&cfg);
        assert_eq!(classic.deps_of(n(1)), &[n(1)]);
        assert_eq!(classic.deps_of(n(2)), &[n(1)]);
        assert_eq!(classic.deps_of(n(3)), &[]);
    }

    #[test]
    fn strong_artifact_on_a_while_loop() {
        let cfg = parse_edge_list("0->1 1->2 2->1 1->3").unwrap();
        let strong = StrongControlDeps::of_cfg(&cfg);
        // The exit is exactly the termination-sensitive dependent of
        // the header: strongly dependent, weakly unconditional.
        assert_eq!(strong.termination_sensitive_deps(n(1)), vec![n(3)]);
        // Strong regions: 1, 2, 3 share the NTSCD set {1}; the entry
        // has the empty set and sits alone.
        assert!(strong.regions().same_region(n(1), n(3)));
        assert!(!strong.regions().same_region(n(0), n(3)));
        assert!(strong.dod().is_empty());
    }

    #[test]
    fn acyclic_graphs_have_equal_strong_and_weak_relations() {
        let cfg = parse_edge_list("0->1 0->2 1->3 2->3 3->4 3->5 4->6 5->6").unwrap();
        let strong = StrongControlDeps::of_cfg(&cfg);
        let classic = strong.classic().unwrap();
        for i in 0..cfg.node_count() {
            assert_eq!(
                strong.ntscd().deps_of(n(i)),
                classic.deps_of(n(i)),
                "node {i}"
            );
            assert!(strong.termination_sensitive_deps(n(i)).is_empty());
        }
    }

    #[test]
    fn graph_form_has_no_classic_relation() {
        let mut g = Graph::new();
        let nodes = g.add_nodes(3);
        g.add_edge(nodes[0], nodes[1]);
        g.add_edge(nodes[1], nodes[2]);
        g.add_edge(nodes[2], nodes[1]);
        let strong = StrongControlDeps::of_graph(&g);
        assert!(strong.classic().is_none());
        assert!(strong.termination_sensitive_deps(nodes[1]).is_empty());
        // The inescapable loop {1,2} strongly separates from the entry:
        // 1 and 2 have empty NTSCD sets (no branches at all), so all
        // three nodes actually share the empty set here.
        assert_eq!(strong.regions().num_classes(), 1);
    }

    #[test]
    fn from_parts_recomputes_regions() {
        let cfg = parse_edge_list("0->1 1->2 2->1 1->3").unwrap();
        let strong = StrongControlDeps::of_cfg(&cfg);
        let rebuilt = StrongControlDeps::from_parts(
            strong.ntscd().clone(),
            strong.dod().clone(),
            strong.classic().cloned(),
        );
        assert_eq!(
            crate::partition_signature(rebuilt.regions(), 4),
            crate::partition_signature(strong.regions(), 4),
        );
    }
}
