//! Canonical partition comparison.
//!
//! Several layers of the workspace need to ask "are these two node
//! partitions the same, irrespective of class numbering?" — the
//! baseline-agreement tests in this crate, the cycle-equivalence and
//! control-region checkers in `pst-verify`, and the strong-region
//! partition of [`crate::StrongControlDeps`]. This module is the one
//! canonical implementation they all share: renumber class labels by
//! first occurrence, then compare with `==`.

use pst_cfg::NodeId;
use pst_core::ControlRegions;

/// Renumbers arbitrary class labels into a canonical form: classes are
/// numbered `0, 1, 2, …` in order of first occurrence. Two labelings
/// describe the same partition iff their canonical forms are equal.
///
/// # Examples
///
/// ```
/// use pst_controldep::canonical_partition;
/// assert_eq!(canonical_partition(&[7, 7, 3, 7]), vec![0, 0, 1, 0]);
/// assert_eq!(
///     canonical_partition(&[2, 2, 9, 2]),
///     canonical_partition(&[0, 0, 1, 0]),
/// );
/// ```
pub fn canonical_partition(labels: &[u32]) -> Vec<u32> {
    let mut remap: Vec<Option<u32>> = Vec::new();
    let mut next = 0u32;
    labels
        .iter()
        .map(|&raw| {
            let idx = raw as usize;
            if idx >= remap.len() {
                remap.resize(idx + 1, None);
            }
            *remap[idx].get_or_insert_with(|| {
                let c = next;
                next += 1;
                c
            })
        })
        .collect()
}

/// Whether two class labelings describe the same partition of
/// `0..labels.len()`, irrespective of numbering.
///
/// # Examples
///
/// ```
/// use pst_controldep::same_partition;
/// assert!(same_partition(&[0, 0, 1], &[5, 5, 2]));
/// assert!(!same_partition(&[0, 0, 1], &[0, 1, 1]));
/// ```
pub fn same_partition(a: &[u32], b: &[u32]) -> bool {
    a.len() == b.len() && canonical_partition(a) == canonical_partition(b)
}

/// Groups `0..node_count` by class — a numbering-independent partition
/// signature with sorted groups, handy for test assertions and dumps.
///
/// # Examples
///
/// ```
/// use pst_cfg::parse_edge_list;
/// use pst_controldep::{cfs_control_regions, partition_signature};
/// let cfg = parse_edge_list("0->1 0->2 1->3 2->3").unwrap();
/// let cr = cfs_control_regions(&cfg);
/// let sig = partition_signature(&cr, cfg.node_count());
/// assert_eq!(sig, vec![vec![0, 3], vec![1], vec![2]]);
/// ```
pub fn partition_signature(cr: &ControlRegions, node_count: usize) -> Vec<Vec<usize>> {
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); cr.num_classes()];
    for i in 0..node_count {
        groups[cr.class(NodeId::from_index(i)) as usize].push(i);
    }
    groups.sort();
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_form_is_first_occurrence_order() {
        assert_eq!(canonical_partition(&[]), Vec::<u32>::new());
        assert_eq!(canonical_partition(&[9]), vec![0]);
        assert_eq!(canonical_partition(&[4, 1, 4, 0, 1]), vec![0, 1, 0, 2, 1]);
    }

    #[test]
    fn same_partition_ignores_numbering_only() {
        assert!(same_partition(&[3, 3, 8], &[0, 0, 7]));
        assert!(!same_partition(&[0, 1], &[0, 0]));
        assert!(!same_partition(&[0, 1], &[0, 1, 2]));
    }

    #[test]
    fn signature_matches_from_classes_renumbering() {
        let cr = ControlRegions::from_classes(vec![5, 5, 2, 9]);
        let sig = partition_signature(&cr, 4);
        assert_eq!(sig, vec![vec![0, 1], vec![2], vec![3]]);
    }
}
