//! Edge-based control dependence over the strongly connected closure.
//!
//! Node `n` is control dependent on edge `e = (u, v)` iff `n`
//! postdominates `v` and does not *strictly* postdominate `u` — the edge
//! formulation of the paper's Definition 8. For the paper's Theorem 7 to
//! hold ("same set of control dependences ⇔ node cycle equivalence in
//! `S`"), the relation must be computed over **`S = G + (end → start)`**
//! itself, with postdominance taken in `S`:
//!
//! * the added edge makes unconditionally-executed nodes (`start`, `end`,
//!   straight-line code between them) compare equal through their shared
//!   dependence on the virtual edge, and
//! * a loop *header* keeps its dependence on the virtual edge while the
//!   loop *body* does not, separating them exactly as cycle equivalence
//!   does.
//!
//! (The classic FOW `ENTRY → EXIT` augmentation produces a different — and
//! for Theorem 7, wrong — partition; the doc-tests below pin the corner
//! cases.)
//!
//! The full relation has `O(N·E)` size in the worst case; this module
//! materializes it, which is exactly why it is a *baseline* rather than
//! the linear-time algorithm of `pst-core`.

use pst_cfg::{Cfg, EdgeId, Graph, NodeId};
use pst_dominators::{dominator_tree_in, Direction, DomTree};

/// The control-dependence relation of a CFG, taken over the strongly
/// connected closure `S`.
///
/// # Examples
///
/// ```
/// use pst_cfg::{parse_edge_list, NodeId};
/// use pst_controldep::ControlDependence;
/// let cfg = parse_edge_list("0->1 0->2 1->3 2->3").unwrap();
/// let cd = ControlDependence::compute(&cfg);
/// let n = |i| NodeId::from_index(i);
/// // The arms depend on their branch edges; entry and exit share a sole
/// // dependence on the virtual end→start edge.
/// assert_eq!(cd.deps_of(n(1)).len(), 1);
/// assert_eq!(cd.deps_of(n(0)), &[cd.virtual_edge()]);
/// assert_eq!(cd.deps_of(n(0)), cd.deps_of(n(3)));
/// ```
#[derive(Clone, Debug)]
pub struct ControlDependence {
    /// `deps[n]` = sorted edge ids `n` is control dependent on. Edge ids
    /// refer to `S`: original ids plus the virtual `end → start` edge with
    /// id `cfg.edge_count()`.
    deps: Vec<Vec<EdgeId>>,
    closure: Graph,
    virtual_edge: EdgeId,
}

impl ControlDependence {
    /// Computes the relation for `cfg`.
    pub fn compute(cfg: &Cfg) -> Self {
        let _span = pst_obs::Span::enter("control_dependence");
        let (closure, virtual_edge) = cfg.to_strongly_connected();
        let pdom = dominator_tree_in(&closure, cfg.exit(), Direction::Backward);
        let deps = dependence_sets(&closure, &pdom);
        ControlDependence {
            deps,
            closure,
            virtual_edge,
        }
    }

    /// Sorted control-dependence set of `node` (edge ids in `S`).
    pub fn deps_of(&self, node: NodeId) -> &[EdgeId] {
        &self.deps[node.index()]
    }

    /// Whether `node` is control dependent on `edge`.
    pub fn depends_on(&self, node: NodeId, edge: EdgeId) -> bool {
        self.deps[node.index()].binary_search(&edge).is_ok()
    }

    /// The strongly connected closure `S` (original edge ids preserved).
    pub fn closure_graph(&self) -> &Graph {
        &self.closure
    }

    /// Id of the virtual `end → start` edge.
    pub fn virtual_edge(&self) -> EdgeId {
        self.virtual_edge
    }

    /// Total size of the relation (Σ |CD(n)|).
    pub fn relation_size(&self) -> usize {
        self.deps.iter().map(|d| d.len()).sum()
    }

    /// For each edge of `S`, the list of nodes control dependent on it
    /// (the transposed relation, used by the CFS refinement baseline).
    pub fn dependents_by_edge(&self) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.closure.edge_count()];
        for (n, deps) in self.deps.iter().enumerate() {
            for &e in deps {
                out[e.index()].push(NodeId::from_index(n));
            }
        }
        out
    }
}

/// CD sets via the postdominator-tree runner walk: for edge `(u, v)`,
/// every node on the pdom-tree path from `v` up to (excluding) `ipdom(u)`
/// is control dependent on the edge.
fn dependence_sets(graph: &Graph, pdom: &DomTree) -> Vec<Vec<EdgeId>> {
    let mut deps: Vec<Vec<EdgeId>> = vec![Vec::new(); graph.node_count()];
    for e in graph.edges() {
        let (u, v) = graph.endpoints(e);
        if !pdom.is_reachable(u) || !pdom.is_reachable(v) {
            continue;
        }
        let stop = pdom.idom(u);
        let mut runner = Some(v);
        while let Some(r) = runner {
            if Some(r) == stop {
                break;
            }
            deps[r.index()].push(e);
            if Some(r) == pdom.idom(r) {
                break; // defensive: cannot happen in a well-formed tree
            }
            runner = pdom.idom(r);
        }
    }
    for d in &mut deps {
        d.sort_unstable();
        d.dedup();
    }
    deps
}

#[cfg(test)]
mod tests {
    use super::*;
    use pst_cfg::parse_edge_list;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    fn cd(desc: &str) -> ControlDependence {
        ControlDependence::compute(&parse_edge_list(desc).unwrap())
    }

    #[test]
    fn straight_line_all_share_virtual_dependence() {
        let c = cd("0->1 1->2 2->3");
        for i in 0..4 {
            assert_eq!(c.deps_of(n(i)), &[c.virtual_edge()], "node {i}");
        }
        assert_eq!(c.relation_size(), 4);
    }

    #[test]
    fn diamond_arms_depend_on_branch_edges() {
        let cfg = parse_edge_list("0->1 0->2 1->3 2->3").unwrap();
        let c = ControlDependence::compute(&cfg);
        let g = cfg.graph();
        let e01 = g.edges().find(|&e| g.target(e) == n(1)).unwrap();
        let e02 = g.edges().find(|&e| g.target(e) == n(2)).unwrap();
        assert_eq!(c.deps_of(n(1)), &[e01]);
        assert_eq!(c.deps_of(n(2)), &[e02]);
        assert_eq!(c.deps_of(n(0)), &[c.virtual_edge()]);
        assert_eq!(c.deps_of(n(0)), c.deps_of(n(3)));
    }

    #[test]
    fn loop_header_and_body_have_different_sets() {
        // The crucial Theorem-7 corner: under S-closure postdominance, the
        // header keeps its virtual-edge dependence, the body does not.
        let cfg = parse_edge_list("0->1 1->2 2->1 1->3").unwrap();
        let c = ControlDependence::compute(&cfg);
        let g = cfg.graph();
        let e12 = g
            .edges()
            .find(|&e| g.source(e) == n(1) && g.target(e) == n(2))
            .unwrap();
        assert_eq!(c.deps_of(n(2)), &[e12]);
        assert_eq!(c.deps_of(n(1)), &[e12, c.virtual_edge()]);
        assert_ne!(c.deps_of(n(1)), c.deps_of(n(2)));
        assert_eq!(c.deps_of(n(0)), c.deps_of(n(3)));
    }

    #[test]
    fn self_loop_depends_on_itself() {
        let cfg = parse_edge_list("0->1 1->1 1->2").unwrap();
        let c = ControlDependence::compute(&cfg);
        let g = cfg.graph();
        let loop_edge = g.edges().find(|&e| g.is_self_loop(e)).unwrap();
        assert_eq!(c.deps_of(n(1)), &[loop_edge, c.virtual_edge()]);
        assert_eq!(c.deps_of(n(0)), c.deps_of(n(2)));
    }

    #[test]
    fn depends_on_matches_sets() {
        let cfg = parse_edge_list("0->1 0->2 1->3 2->3").unwrap();
        let c = ControlDependence::compute(&cfg);
        for node in cfg.graph().nodes() {
            for e in c.closure_graph().edges() {
                assert_eq!(c.depends_on(node, e), c.deps_of(node).contains(&e));
            }
        }
    }

    #[test]
    fn transposed_relation_is_consistent() {
        let c = cd("0->1 1->2 2->1 1->3");
        let by_edge = c.dependents_by_edge();
        let total: usize = by_edge.iter().map(|d| d.len()).sum();
        assert_eq!(total, c.relation_size());
    }
}
