//! Non-termination-sensitive control dependence (NTSCD).
//!
//! Classic Ferrante–Ottenstein–Warren control dependence is computed
//! from postdominators, which only talk about paths that *reach the
//! exit*. A loop that may spin forever is invisible to it: the code
//! after the loop is classically unconditional even though it executes
//! only if the loop terminates. NTSCD (Ranganath et al.) repairs this by
//! quantifying over **maximal paths** — paths that are infinite or end
//! in a node with no successors:
//!
//! > `n` is NTSCD-dependent on a branch `p` iff `p` has a successor
//! > `s₁` such that every maximal path from `s₁` contains `n`, and a
//! > successor `s₂` with some maximal path avoiding `n`.
//!
//! This module implements the iterative counter-propagation algorithm
//! in the style of Chalupa et al., "Fast Computation of Strong Control
//! Dependencies" (see PAPERS.md): for each target node `w`, the set
//! `{x : every maximal path from x contains w}` is the least fixed
//! point of *"`w` is in; a node is in when it has at least one
//! successor and all of them are in"*, computed in `O(N + E)` by
//! backward propagation with out-degree counters. Scanning the branch
//! nodes against each target's set yields the full relation in
//! `O(N·(N + E))` time and `O(N)` working memory — no maximal path is
//! ever materialized. The naive path-enumeration oracle lives in
//! `pst-verify`, which re-derives this relation independently on fuzzed
//! digraphs.
//!
//! NTSCD is defined on **arbitrary digraphs** — unlike the classic
//! relation it needs no exit node and is exactly what makes it able to
//! describe non-terminating control flow.

use pst_cfg::{Graph, NodeId};

/// The non-termination-sensitive control-dependence relation of a
/// digraph: for every node, the sorted list of branch nodes it depends
/// on.
///
/// # Examples
///
/// A `while` loop: the exit node is NTSCD-dependent on the loop header
/// (it executes only if the loop terminates), which classic control
/// dependence cannot express.
///
/// ```
/// use pst_cfg::{Graph, NodeId};
/// use pst_controldep::Ntscd;
/// let mut g = Graph::new();
/// let n = g.add_nodes(4); // 0=entry, 1=header, 2=body, 3=exit
/// g.add_edge(n[0], n[1]);
/// g.add_edge(n[1], n[2]);
/// g.add_edge(n[2], n[1]);
/// g.add_edge(n[1], n[3]);
/// let ntscd = Ntscd::compute(&g);
/// assert!(ntscd.depends_on(n[3], n[1])); // exit depends on the header
/// assert!(ntscd.depends_on(n[1], n[1])); // the header on itself
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ntscd {
    /// `deps[n]` = branch nodes `n` is NTSCD-dependent on, sorted.
    deps: Vec<Vec<NodeId>>,
}

impl Ntscd {
    /// Computes the NTSCD relation of `graph` in `O(N·(N + E))`.
    pub fn compute(graph: &Graph) -> Ntscd {
        let _span = pst_obs::Span::enter("ntscd");
        let n = graph.node_count();
        let branches = branch_nodes(graph);
        let mut deps: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let mut inevitable = vec![false; n];
        let mut needed: Vec<u32> = vec![0; n];
        let mut worklist: Vec<NodeId> = Vec::with_capacity(n);
        for w in graph.nodes() {
            pst_obs::counter!("ntscd_targets");
            inevitable_to_into(graph, w, None, &mut inevitable, &mut needed, &mut worklist);
            for (p, succs) in &branches {
                let mut any_in = false;
                let mut any_out = false;
                for s in succs {
                    if inevitable[s.index()] {
                        any_in = true;
                    } else {
                        any_out = true;
                    }
                }
                if any_in && any_out {
                    // Branch order is ascending, so `deps[w]` stays sorted.
                    deps[w.index()].push(*p);
                    pst_obs::counter!("ntscd_deps_total");
                }
            }
        }
        Ntscd { deps }
    }

    /// Wraps a precomputed relation (each inner list must be sorted).
    /// Used by tests and by `pst-verify`'s fault injection.
    pub fn from_raw(deps: Vec<Vec<NodeId>>) -> Ntscd {
        Ntscd { deps }
    }

    /// The branch nodes `node` is NTSCD-dependent on, sorted ascending.
    pub fn deps_of(&self, node: NodeId) -> &[NodeId] {
        &self.deps[node.index()]
    }

    /// Whether `node` is NTSCD-dependent on `branch`.
    pub fn depends_on(&self, node: NodeId, branch: NodeId) -> bool {
        self.deps[node.index()].binary_search(&branch).is_ok()
    }

    /// Number of nodes the relation is defined over.
    pub fn node_count(&self) -> usize {
        self.deps.len()
    }

    /// Total number of `(node, branch)` pairs in the relation.
    pub fn relation_size(&self) -> usize {
        self.deps.iter().map(Vec::len).sum()
    }

    /// Consumes the relation into its per-node dependence lists.
    pub fn into_raw(self) -> Vec<Vec<NodeId>> {
        self.deps
    }
}

/// Branch nodes of `graph` with their *distinct* successors, in
/// ascending node order. Parallel edges to one target cannot split
/// control, so they do not make a node a predicate.
pub(crate) fn branch_nodes(graph: &Graph) -> Vec<(NodeId, Vec<NodeId>)> {
    let mut branches: Vec<(NodeId, Vec<NodeId>)> = Vec::new();
    for p in graph.nodes() {
        let mut succs: Vec<NodeId> = graph.successors(p).collect();
        succs.sort_unstable();
        succs.dedup();
        if succs.len() >= 2 {
            branches.push((p, succs));
        }
    }
    branches
}

/// Fills `inevitable` with the set `{x : every maximal path from x
/// contains w}` by backward counter propagation. When `blocked` is
/// set, that node is treated as a sink (its out-edges ignored, never
/// marked) — this turns the predicate into *"every maximal path from
/// x reaches w before touching `blocked`"*, the primitive the DOD
/// first-occurrence-order test is built from. `needed` and `worklist`
/// are caller-provided scratch so repeated targets reuse allocations.
pub(crate) fn inevitable_to_into(
    graph: &Graph,
    w: NodeId,
    blocked: Option<NodeId>,
    inevitable: &mut [bool],
    needed: &mut [u32],
    worklist: &mut Vec<NodeId>,
) {
    debug_assert_ne!(Some(w), blocked);
    inevitable.fill(false);
    for x in graph.nodes() {
        needed[x.index()] = graph.out_degree(x) as u32;
    }
    worklist.clear();
    inevitable[w.index()] = true;
    worklist.push(w);
    while let Some(x) = worklist.pop() {
        for &e in graph.in_edges(x) {
            let p = graph.source(e);
            if inevitable[p.index()] || Some(p) == blocked {
                continue;
            }
            // Each in-edge into the marked set is consumed exactly
            // once, so the counter reaches zero iff *all* out-edges of
            // `p` lead to marked nodes.
            needed[p.index()] -= 1;
            if needed[p.index()] == 0 {
                inevitable[p.index()] = true;
                worklist.push(p);
            }
        }
    }
    // A sink other than `w` starts with counter 0 but is never pushed:
    // its one maximal path is itself, which avoids `w`. Marking happens
    // only via edge consumption, so sinks (and the blocked node) stay
    // out.
}

/// Standalone convenience for tests: the inevitability set of one
/// target as a boolean side table.
#[cfg(test)]
pub(crate) fn inevitable_to(graph: &Graph, w: NodeId) -> Vec<bool> {
    let n = graph.node_count();
    let mut inevitable = vec![false; n];
    let mut needed = vec![0u32; n];
    let mut worklist = Vec::new();
    inevitable_to_into(graph, w, None, &mut inevitable, &mut needed, &mut worklist);
    inevitable
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(node_count: usize, edges: &[(usize, usize)]) -> (Graph, Vec<NodeId>) {
        let mut g = Graph::new();
        let n = g.add_nodes(node_count);
        for &(a, b) in edges {
            g.add_edge(n[a], n[b]);
        }
        (g, n)
    }

    #[test]
    fn inevitability_on_a_while_loop() {
        // 0 -> 1(header) -> 2(body) -> 1, 1 -> 3(exit)
        let (g, n) = graph(4, &[(0, 1), (1, 2), (2, 1), (1, 3)]);
        let to_header = inevitable_to(&g, n[1]);
        // Entry and body always reach the header; the exit never does.
        assert_eq!(to_header, vec![true, true, true, false]);
        let to_exit = inevitable_to(&g, n[3]);
        // The loop can spin forever, so nothing is inevitable but the
        // exit itself.
        assert_eq!(to_exit, vec![false, false, false, true]);
    }

    #[test]
    fn while_loop_ntscd() {
        let (g, n) = graph(4, &[(0, 1), (1, 2), (2, 1), (1, 3)]);
        let ntscd = Ntscd::compute(&g);
        // Header, body, and exit all depend on the header; 0 on nothing.
        assert_eq!(ntscd.deps_of(n[0]), &[]);
        assert_eq!(ntscd.deps_of(n[1]), &[n[1]]);
        assert_eq!(ntscd.deps_of(n[2]), &[n[1]]);
        assert_eq!(ntscd.deps_of(n[3]), &[n[1]]);
        assert_eq!(ntscd.relation_size(), 3);
    }

    #[test]
    fn acyclic_diamond_matches_classic_intuition() {
        let (g, n) = graph(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let ntscd = Ntscd::compute(&g);
        assert_eq!(ntscd.deps_of(n[1]), &[n[0]]);
        assert_eq!(ntscd.deps_of(n[2]), &[n[0]]);
        // The join postdominates the branch: no dependence.
        assert_eq!(ntscd.deps_of(n[3]), &[]);
        assert_eq!(ntscd.deps_of(n[0]), &[]);
    }

    #[test]
    fn terminal_cycle_traps_dependence() {
        // Branch 0 chooses between a terminal 2-cycle {1,2} and exit 3.
        let (g, n) = graph(4, &[(0, 1), (1, 2), (2, 1), (0, 3)]);
        let ntscd = Ntscd::compute(&g);
        // Every non-entry node depends on the branch at 0 — including
        // the cycle members, which only execute on the left arm.
        assert_eq!(ntscd.deps_of(n[1]), &[n[0]]);
        assert_eq!(ntscd.deps_of(n[2]), &[n[0]]);
        assert_eq!(ntscd.deps_of(n[3]), &[n[0]]);
    }

    #[test]
    fn parallel_edges_are_not_a_predicate() {
        let (g, n) = graph(3, &[(0, 1), (0, 1), (1, 2)]);
        let ntscd = Ntscd::compute(&g);
        assert_eq!(ntscd.relation_size(), 0);
        assert!(!ntscd.depends_on(n[1], n[0]));
    }

    #[test]
    fn self_loop_predicate() {
        // 0 -> 1, 1 -> 1, 1 -> 2: node 1 is a branch between itself and 2.
        let (g, n) = graph(3, &[(0, 1), (1, 1), (1, 2)]);
        let ntscd = Ntscd::compute(&g);
        // 2 depends on 1 (the self-loop may spin forever); 1 on itself.
        assert!(ntscd.depends_on(n[2], n[1]));
        assert!(ntscd.depends_on(n[1], n[1]));
    }

    #[test]
    fn raw_round_trip() {
        let (g, _) = graph(4, &[(0, 1), (1, 2), (2, 1), (1, 3)]);
        let ntscd = Ntscd::compute(&g);
        let raw = ntscd.clone().into_raw();
        assert_eq!(Ntscd::from_raw(raw), ntscd);
    }
}
