//! Control dependence and the paper's control-region baselines.
//!
//! The reproduced paper's §5 shows how to compute *control regions* —
//! equivalence classes of nodes with identical control dependences — in
//! `O(E)` time, improving on Ferrante–Ottenstein–Warren's hashing approach
//! and Cytron–Ferrante–Sarkar's `O(E·N)` partition refinement. This crate
//! implements the slower predecessors:
//!
//! * [`ControlDependence`] — the full edge-based control-dependence
//!   relation over the FOW-augmented CFG (`start → end` edge added),
//! * [`fow_control_regions`] — group nodes by hashing their CD sets,
//! * [`cfs_control_regions`] — iterated partition refinement,
//! * [`linear_control_regions`] — re-export of the `O(E)` algorithm from
//!   `pst-core` so benches compare all three from one import.
//!
//! All three algorithms produce identical partitions (the paper's
//! Theorem 7); the property tests in this crate verify that on thousands
//! of random CFGs.
//!
//! # Examples
//!
//! ```
//! use pst_cfg::parse_edge_list;
//! use pst_controldep::{cfs_control_regions, fow_control_regions, linear_control_regions};
//! let cfg = parse_edge_list("0->1 0->2 1->2 2->1 1->3 2->3").unwrap(); // irreducible!
//! let a = fow_control_regions(&cfg);
//! assert_eq!(a, cfs_control_regions(&cfg));
//! assert_eq!(a, linear_control_regions(&cfg));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baselines;
mod cdg;

pub use baselines::{
    cfs_control_regions, cfs_from_dependence, fow_control_regions, fow_from_dependence,
    linear_control_regions, partition_signature, ControlRegions,
};
pub use cdg::ControlDependence;
