//! Control dependence: the paper's control-region baselines plus the
//! strong (non-termination-sensitive) subsystem.
//!
//! The crate has two halves.
//!
//! **Weak (classic) control dependence and the paper's baselines.**
//! The reproduced paper's §5 shows how to compute *control regions* —
//! equivalence classes of nodes with identical control dependences — in
//! `O(E)` time, improving on Ferrante–Ottenstein–Warren's hashing approach
//! and Cytron–Ferrante–Sarkar's `O(E·N)` partition refinement:
//!
//! * [`ControlDependence`] — the full edge-based control-dependence
//!   relation over the strongly connected closure (Theorem-7 form),
//! * [`ClassicControlDeps`] — the textbook node-level FOW relation,
//! * [`fow_control_regions`] — group nodes by hashing their CD sets,
//! * [`cfs_control_regions`] — iterated partition refinement,
//! * [`linear_control_regions`] — re-export of the `O(E)` algorithm from
//!   `pst-core` so benches compare all three from one import.
//!
//! All three region algorithms produce identical partitions (the paper's
//! Theorem 7); the property tests in this crate verify that on thousands
//! of random CFGs.
//!
//! **Strong control dependence.** Classic control dependence is
//! termination-insensitive: code after a loop that may spin forever
//! looks unconditional. Following Chalupa et al., "Fast Computation of
//! Strong Control Dependencies" (PAPERS.md):
//!
//! * [`Ntscd`] — non-termination-sensitive control dependence over
//!   maximal paths, on arbitrary digraphs,
//! * [`Dod`] — decisive order dependence, the pair-ordering cases
//!   NTSCD misses,
//! * [`StrongControlDeps`] — the combined artifact with a
//!   strong-region partition (identical NTSCD sets — the strong
//!   analogue of Theorem 7's control regions).
//!
//! Partition plumbing shared by both halves and by `pst-verify` lives
//! in [`canonical_partition`] / [`same_partition`] /
//! [`partition_signature`]. See `docs/CONTROLDEP.md` for the full
//! weak-vs-strong story, complexity table, and the `PST-C1xx` lint
//! family built on top.
//!
//! # Examples
//!
//! ```
//! use pst_cfg::parse_edge_list;
//! use pst_controldep::{cfs_control_regions, fow_control_regions, linear_control_regions};
//! let cfg = parse_edge_list("0->1 0->2 1->2 2->1 1->3 2->3").unwrap(); // irreducible!
//! let a = fow_control_regions(&cfg);
//! assert_eq!(a, cfs_control_regions(&cfg));
//! assert_eq!(a, linear_control_regions(&cfg));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baselines;
mod cdg;
mod dod;
mod ntscd;
mod partition;
mod strong;

pub use baselines::{
    cfs_control_regions, cfs_from_dependence, fow_control_regions, fow_from_dependence,
    linear_control_regions, ControlRegions,
};
pub use cdg::ControlDependence;
pub use dod::{Dod, DodWitness, DEFAULT_DOD_BUDGET};
pub use ntscd::Ntscd;
pub use partition::{canonical_partition, partition_signature, same_partition};
pub use strong::{ClassicControlDeps, StrongControlDeps};
