//! Decisive order dependence (DOD).
//!
//! NTSCD captures *whether* a node executes under a branch, but not
//! the cases where a branch decides only the **order** in which two
//! nodes (that both inevitably execute) are reached. Those are the
//! order-dependence cases slicing must keep:
//!
//! > `(p; a, b)` is a DOD witness iff every maximal path from `p`
//! > contains both `a` and `b`, some successor of `p` starts only
//! > maximal paths that reach `a` before `b`, and some successor
//! > starts only maximal paths that reach `b` before `a`.
//!
//! Two structural facts (Chalupa et al., PAPERS.md) shrink the search:
//! a witness forces `a` to reach `b` *and* `b` to reach `a` (take one
//! path of each order), so `{a, b}` must lie in one nontrivial SCC —
//! and on a valid Definition-1 CFG, where every node reaches the exit,
//! no witness exists at all. DOD is therefore interesting precisely on
//! raw digraphs with nontrivial terminal SCCs, the inputs the
//! canonicalizer repairs with virtual loop exits.
//!
//! The order test reuses the NTSCD propagation primitive: *"all
//! maximal paths from `s` reach `a` before `b`"* is exactly *"`a` is
//! inevitable from `s` once `b` is treated as a sink"* — every maximal
//! path in the `b`-blocked graph is a maximal path of the original
//! truncated at its first visit to `b`, so inevitability in the
//! blocked graph is first-occurrence order in the original. Each
//! candidate pair costs two `O(N + E)` propagations; a work budget
//! bounds the quadratic pair enumeration on adversarial graphs and is
//! reported via [`Dod::is_complete`].

use pst_cfg::{Graph, NodeId, Sccs};

use crate::ntscd::{branch_nodes, inevitable_to_into};

/// Default work budget for [`Dod::compute`], in propagation-step
/// units (one unit ≈ one `O(N + E)` pass). Generous for every graph
/// the test and bench suites use; adversarial SCC-heavy graphs
/// truncate instead of stalling.
pub const DEFAULT_DOD_BUDGET: u64 = 50_000_000;

/// One decisive order dependence: `branch` decides whether `first` or
/// `second` is reached first, even though both always execute.
/// Normalized so `first < second` by node id (the relation itself is
/// symmetric in the pair).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct DodWitness {
    /// The deciding branch node `p`.
    pub branch: NodeId,
    /// Smaller node of the order-dependent pair.
    pub first: NodeId,
    /// Larger node of the order-dependent pair.
    pub second: NodeId,
}

/// The decisive-order-dependence relation of a digraph: all witnesses
/// `(p; a, b)`, sorted and deduplicated.
///
/// # Examples
///
/// The canonical witness needs a nontrivial terminal SCC entered at
/// two points:
///
/// ```
/// use pst_cfg::Graph;
/// use pst_controldep::Dod;
/// let mut g = Graph::new();
/// let n = g.add_nodes(3); // 0 branches into the 2-cycle {1, 2}
/// g.add_edge(n[0], n[1]);
/// g.add_edge(n[0], n[2]);
/// g.add_edge(n[1], n[2]);
/// g.add_edge(n[2], n[1]);
/// let dod = Dod::compute(&g);
/// let w = dod.witnesses();
/// assert_eq!(w.len(), 1);
/// assert_eq!((w[0].branch, w[0].first, w[0].second), (n[0], n[1], n[2]));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dod {
    witnesses: Vec<DodWitness>,
    complete: bool,
}

impl Dod {
    /// Computes all DOD witnesses under [`DEFAULT_DOD_BUDGET`].
    pub fn compute(graph: &Graph) -> Dod {
        Dod::compute_budgeted(graph, DEFAULT_DOD_BUDGET)
    }

    /// Computes DOD witnesses, spending at most `budget` units of
    /// work (one unit ≈ one `O(N + E)` propagation). When the budget
    /// runs out the result is truncated and [`Dod::is_complete`]
    /// returns `false`.
    pub fn compute_budgeted(graph: &Graph, budget: u64) -> Dod {
        let _span = pst_obs::Span::enter("dod");
        let n = graph.node_count();
        let prop_cost = (n + graph.edge_count() + 1) as u64;
        let mut props_left = (budget / prop_cost).max(16);

        let sccs = Sccs::new(graph);
        let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); sccs.count()];
        for v in graph.nodes() {
            members[sccs.component(v)].push(v);
        }
        let branches = branch_nodes(graph);

        let mut witnesses: Vec<DodWitness> = Vec::new();
        let mut complete = true;
        // Scratch shared by every propagation.
        let mut needed = vec![0u32; n];
        let mut worklist: Vec<NodeId> = Vec::with_capacity(n);
        let mut ord_ab = vec![false; n];
        let mut ord_ba = vec![false; n];
        let mut inevitable = vec![false; n];

        'outer: for comp in &members {
            // Only nontrivial SCCs can hold an order-dependent pair.
            if comp.len() < 2 || branches.is_empty() {
                continue;
            }
            // Inevitability rows for every member: rows[i][x] holds
            // when all maximal paths from x contain comp[i].
            let mut rows: Vec<Vec<bool>> = Vec::with_capacity(comp.len());
            for &w in comp {
                if props_left == 0 {
                    complete = false;
                    break 'outer;
                }
                props_left -= 1;
                inevitable_to_into(graph, w, None, &mut inevitable, &mut needed, &mut worklist);
                rows.push(inevitable.clone());
            }
            for i in 0..comp.len() {
                for j in (i + 1)..comp.len() {
                    let (a, b) = (comp[i], comp[j]);
                    // Branches from which both a and b are inevitable.
                    let mut cands = branches
                        .iter()
                        .filter(|(p, _)| rows[i][p.index()] && rows[j][p.index()])
                        .peekable();
                    if cands.peek().is_none() {
                        continue;
                    }
                    if props_left < 2 {
                        complete = false;
                        break 'outer;
                    }
                    props_left -= 2;
                    pst_obs::counter!("dod_pairs_checked");
                    inevitable_to_into(graph, a, Some(b), &mut ord_ab, &mut needed, &mut worklist);
                    inevitable_to_into(graph, b, Some(a), &mut ord_ba, &mut needed, &mut worklist);
                    for (p, succs) in cands {
                        let a_first = succs.iter().any(|s| ord_ab[s.index()]);
                        let b_first = succs.iter().any(|s| ord_ba[s.index()]);
                        if a_first && b_first {
                            pst_obs::counter!("dod_witnesses");
                            witnesses.push(DodWitness {
                                branch: *p,
                                first: a,
                                second: b,
                            });
                        }
                    }
                }
            }
        }
        witnesses.sort_unstable();
        witnesses.dedup();
        Dod {
            witnesses,
            complete,
        }
    }

    /// Wraps a precomputed witness list (must be sorted, `first <
    /// second`). Used by tests and by `pst-verify`'s fault injection.
    pub fn from_raw(witnesses: Vec<DodWitness>, complete: bool) -> Dod {
        Dod {
            witnesses,
            complete,
        }
    }

    /// All witnesses, sorted by `(branch, first, second)`.
    pub fn witnesses(&self) -> &[DodWitness] {
        &self.witnesses
    }

    /// Whether the relation has no witnesses.
    pub fn is_empty(&self) -> bool {
        self.witnesses.is_empty()
    }

    /// `false` when the work budget truncated the pair enumeration —
    /// the witnesses present are sound, but more may exist.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// Consumes the relation into its witness list.
    pub fn into_raw(self) -> Vec<DodWitness> {
        self.witnesses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(node_count: usize, edges: &[(usize, usize)]) -> (Graph, Vec<NodeId>) {
        let mut g = Graph::new();
        let n = g.add_nodes(node_count);
        for &(a, b) in edges {
            g.add_edge(n[a], n[b]);
        }
        (g, n)
    }

    #[test]
    fn canonical_two_entry_cycle_witness() {
        let (g, n) = graph(3, &[(0, 1), (0, 2), (1, 2), (2, 1)]);
        let dod = Dod::compute(&g);
        assert!(dod.is_complete());
        assert_eq!(
            dod.witnesses(),
            &[DodWitness {
                branch: n[0],
                first: n[1],
                second: n[2],
            }]
        );
    }

    #[test]
    fn while_loop_has_no_witness() {
        // Valid CFG shape: branch can escape the cycle, so the body is
        // not inevitable and no order is decided.
        let (g, _) = graph(4, &[(0, 1), (1, 2), (2, 1), (1, 3)]);
        let dod = Dod::compute(&g);
        assert!(dod.is_complete());
        assert!(dod.is_empty());
    }

    #[test]
    fn acyclic_graphs_are_witness_free() {
        let (g, _) = graph(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let dod = Dod::compute(&g);
        assert!(dod.is_complete());
        assert!(dod.is_empty());
    }

    #[test]
    fn single_entry_terminal_cycle_has_no_witness() {
        // 0 -> 1, cycle {1, 2}: both orders start at 1, nothing decided.
        let (g, _) = graph(3, &[(0, 1), (1, 2), (2, 1)]);
        let dod = Dod::compute(&g);
        assert!(dod.is_complete());
        assert!(dod.is_empty());
    }

    #[test]
    fn larger_cycle_decides_multiple_pairs() {
        // 0 branches into a 3-cycle {1, 2, 3} at two distinct points.
        let (g, n) = graph(4, &[(0, 1), (0, 2), (1, 2), (2, 3), (3, 1)]);
        let dod = Dod::compute(&g);
        assert!(dod.is_complete());
        // Entering at 1 reaches 1 before 2 and before 3; entering at 2
        // reaches both 2 and 3 before 1. Order of (2, 3) is the same
        // either way, so exactly the pairs involving 1 are decided.
        assert_eq!(
            dod.witnesses(),
            &[
                DodWitness {
                    branch: n[0],
                    first: n[1],
                    second: n[2],
                },
                DodWitness {
                    branch: n[0],
                    first: n[1],
                    second: n[3],
                },
            ]
        );
    }

    #[test]
    fn budget_truncation_is_reported() {
        let (g, _) = graph(3, &[(0, 1), (0, 2), (1, 2), (2, 1)]);
        let dod = Dod::compute_budgeted(&g, 0);
        // The minimum floor still allows the tiny graph to finish; use
        // a graph big enough that 16 propagations cannot cover it.
        assert!(dod.is_complete());
        let mut big = Graph::new();
        let nodes = big.add_nodes(40);
        for i in 0..40 {
            big.add_edge(nodes[i], nodes[(i + 1) % 40]);
            big.add_edge(nodes[i], nodes[(i + 7) % 40]);
        }
        let truncated = Dod::compute_budgeted(&big, 0);
        assert!(!truncated.is_complete());
    }

    #[test]
    fn raw_round_trip() {
        let (g, _) = graph(3, &[(0, 1), (0, 2), (1, 2), (2, 1)]);
        let dod = Dod::compute(&g);
        let complete = dod.is_complete();
        let raw = dod.clone().into_raw();
        assert_eq!(Dod::from_raw(raw, complete), dod);
    }
}
