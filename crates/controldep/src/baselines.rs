//! Baseline control-region algorithms the paper compares against.
//!
//! * [`fow_control_regions`] — the Ferrante–Ottenstein–Warren approach:
//!   materialize every node's control-dependence set and group nodes by
//!   hashing the sets. `O(N·E)` time and space in the worst case.
//! * [`cfs_control_regions`] — Cytron–Ferrante–Sarkar partition
//!   refinement: start with all nodes in one class and refine by the
//!   dependent-set of each control-dependence edge. `O(E·N)` worst-case
//!   time, `O(E + N)` space.
//!
//! Both produce exactly the partition of
//! [`pst_core::ControlRegions`](https://docs.rs/pst-core) (cross-validated
//! in tests), but asymptotically slower — reproducing the paper's §5
//! comparison.

use std::collections::HashMap;

use pst_cfg::Cfg;

use crate::ControlDependence;

/// A control-region partition, structurally identical to the one produced
/// by the linear-time algorithm so results compare with `==`.
pub use pst_core::ControlRegions;

/// FOW-style control regions: hash full control-dependence sets.
///
/// # Examples
///
/// ```
/// use pst_cfg::parse_edge_list;
/// use pst_controldep::fow_control_regions;
/// let cfg = parse_edge_list("0->1 0->2 1->3 2->3").unwrap();
/// let cr = fow_control_regions(&cfg);
/// assert_eq!(cr.num_classes(), 3);
/// ```
pub fn fow_control_regions(cfg: &Cfg) -> ControlRegions {
    let _span = pst_obs::Span::enter("fow_baseline");
    let cd = ControlDependence::compute(cfg);
    fow_from_dependence(cfg, &cd)
}

/// FOW grouping over a precomputed relation (so benches can time the
/// grouping and the relation separately).
pub fn fow_from_dependence(cfg: &Cfg, cd: &ControlDependence) -> ControlRegions {
    let mut class_of_set: HashMap<&[pst_cfg::EdgeId], u32> = HashMap::new();
    let mut next = 0u32;
    let raw: Vec<u32> = cfg
        .graph()
        .nodes()
        .map(|n| {
            *class_of_set.entry(cd.deps_of(n)).or_insert_with(|| {
                let c = next;
                next += 1;
                c
            })
        })
        .collect();
    ControlRegions::from_classes(raw)
}

/// Cytron–Ferrante–Sarkar control regions: iterated partition refinement.
///
/// All nodes start in a single class; for every control-dependence edge,
/// the class of each node is split according to membership in that edge's
/// dependent set. Two nodes end in the same class iff no edge ever
/// separated them, i.e. iff their CD sets are equal.
///
/// # Examples
///
/// ```
/// use pst_cfg::parse_edge_list;
/// use pst_controldep::{cfs_control_regions, fow_control_regions};
/// let cfg = parse_edge_list("0->1 1->2 2->1 1->3").unwrap();
/// assert_eq!(cfs_control_regions(&cfg), fow_control_regions(&cfg));
/// ```
pub fn cfs_control_regions(cfg: &Cfg) -> ControlRegions {
    let _span = pst_obs::Span::enter("cfs_baseline");
    let cd = ControlDependence::compute(cfg);
    cfs_from_dependence(cfg, &cd)
}

/// CFS refinement over a precomputed relation.
pub fn cfs_from_dependence(cfg: &Cfg, cd: &ControlDependence) -> ControlRegions {
    let n = cfg.node_count();
    let mut class: Vec<u32> = vec![0; n];
    let mut next = 1u32;
    // Scratch: for each class touched by the current dependent set, the
    // fresh class its members move to.
    let mut split_to: HashMap<u32, u32> = HashMap::new();

    for dependents in cd.dependents_by_edge() {
        if dependents.is_empty() || dependents.len() == n {
            continue; // cannot split anything
        }
        split_to.clear();
        // Count members per touched class to skip classes fully inside the
        // set (splitting those would be a no-op renaming).
        let mut touched: HashMap<u32, usize> = HashMap::new();
        for &node in &dependents {
            *touched.entry(class[node.index()]).or_insert(0) += 1;
        }
        let mut class_sizes: HashMap<u32, usize> = HashMap::new();
        for &c in class.iter() {
            *class_sizes.entry(c).or_insert(0) += 1;
        }
        for &node in &dependents {
            let c = class[node.index()];
            if touched[&c] == class_sizes[&c] {
                continue; // whole class inside the set: no split
            }
            let fresh = *split_to.entry(c).or_insert_with(|| {
                let f = next;
                next += 1;
                f
            });
            class[node.index()] = fresh;
        }
    }
    ControlRegions::from_classes(class)
}

/// Convenience: the linear-time algorithm re-exported next to its
/// baselines so benches and tests compare all three from one import.
pub fn linear_control_regions(cfg: &Cfg) -> ControlRegions {
    ControlRegions::compute(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition_signature;
    use pst_cfg::parse_edge_list;

    fn all_three_agree(desc: &str) {
        let cfg = parse_edge_list(desc).unwrap();
        let fow = fow_control_regions(&cfg);
        let cfs = cfs_control_regions(&cfg);
        let fast = linear_control_regions(&cfg);
        // ControlRegions renumbers densely in node order, so equal
        // partitions are structurally equal.
        assert_eq!(fow, cfs, "fow vs cfs on {desc}");
        assert_eq!(fow, fast, "fow vs linear on {desc}");
    }

    #[test]
    fn agreement_on_structured_graphs() {
        all_three_agree("0->1 1->2 2->3");
        all_three_agree("0->1 0->2 1->3 2->3");
        all_three_agree("0->1 1->2 2->1 1->3");
        all_three_agree("0->1 1->2 2->3 3->2 3->1 1->4");
        all_three_agree("0->1 1->2 1->3 2->4 3->4 4->1 4->5");
    }

    #[test]
    fn agreement_on_unstructured_graphs() {
        all_three_agree("0->1 0->2 1->2 2->1 1->3 2->3");
        all_three_agree("0->1 1->2 2->3 3->4 4->5 3->1 5->2 5->6");
        all_three_agree("0->1 0->3 1->2 2->3 3->4 4->1 2->5 4->5");
    }

    #[test]
    fn agreement_with_self_loops_and_parallel_edges() {
        all_three_agree("0->1 1->1 1->2");
        all_three_agree("0->1 0->1 1->2");
        all_three_agree("0->1 1->1 1->2 2->2 2->3");
    }

    #[test]
    fn diamond_partition_content() {
        let cfg = parse_edge_list("0->1 0->2 1->3 2->3").unwrap();
        let cr = cfs_control_regions(&cfg);
        let sig = partition_signature(&cr, cfg.node_count());
        assert_eq!(sig, vec![vec![0, 3], vec![1], vec![2]]);
    }

    #[test]
    fn refinement_skips_whole_class_splits() {
        // A graph where one dependent set covers an entire class; the
        // result must still match FOW.
        all_three_agree("0->1 1->2 1->3 2->3 3->4");
    }
}
