//! Direct CFG family generators.
//!
//! These produce the parameterized graph families used by the scaling
//! benchmarks: straight-line chains (the worst case for region *count*),
//! diamond ladders, nested repeat-until loops (the paper's quadratic
//! dominance-frontier example from §6.1), irreducible meshes (exercising
//! the "arbitrary flow graphs" claim), and seeded random CFGs.

use std::error::Error;
use std::fmt;

use pst_cfg::{Cfg, CfgBuilder, Graph, NodeId, ValidateCfgError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A straight-line chain of `n ≥ 2` nodes.
///
/// Every edge is cycle equivalent to every other, so the PST is a maximal
/// chain of sequentially composed regions — the stress case for region
/// bookkeeping.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn linear_chain(n: usize) -> Cfg {
    assert!(n >= 2, "a CFG needs at least entry and exit");
    let mut b = CfgBuilder::with_capacity(n, n - 1);
    let nodes = b.add_nodes(n);
    for w in nodes.windows(2) {
        b.add_edge(w[0], w[1]);
    }
    b.finish(nodes[0], nodes[n - 1]).expect("chain is valid")
}

/// `k` sequential if-then-else diamonds.
pub fn diamond_ladder(k: usize) -> Cfg {
    let mut b = CfgBuilder::with_capacity(3 * k + 2, 4 * k + 1);
    let entry = b.add_node();
    let mut prev = entry;
    for _ in 0..k {
        let cond = prev;
        let t = b.add_node();
        let e = b.add_node();
        let join = b.add_node();
        b.add_edge(cond, t);
        b.add_edge(cond, e);
        b.add_edge(t, join);
        b.add_edge(e, join);
        prev = join;
    }
    let exit = b.add_node();
    b.add_edge(prev, exit);
    b.finish(entry, exit).expect("ladder is valid")
}

/// `depth` nested while loops with a single innermost body block.
pub fn nested_while_loops(depth: usize) -> Cfg {
    let mut b = CfgBuilder::new();
    let entry = b.add_node();
    let mut headers = Vec::with_capacity(depth);
    let mut prev = entry;
    for _ in 0..depth {
        let h = b.add_node();
        b.add_edge(prev, h);
        headers.push(h);
        prev = h;
    }
    let body = b.add_node();
    b.add_edge(prev, body);
    let mut inner = body;
    // Close the loops inside-out: body -> innermost header, and each
    // header's "done" edge steps to the enclosing header or onwards.
    let exit_chain: Vec<NodeId> = (0..depth).map(|_| b.add_node()).collect();
    for (i, &h) in headers.iter().enumerate().rev() {
        b.add_edge(inner, h); // backedge
        b.add_edge(h, exit_chain[i]); // loop exit
        inner = exit_chain[i];
    }
    let exit = b.add_node();
    b.add_edge(exit_chain[0], exit);
    b.finish(entry, exit).expect("nest is valid")
}

/// `depth` nested repeat-until (do-while) loops — the shape whose
/// dominance frontiers grow quadratically (Cytron et al., cited in §6.1),
/// which the PST-based SSA construction sidesteps.
pub fn nested_repeat_until(depth: usize) -> Cfg {
    assert!(depth >= 1);
    let mut b = CfgBuilder::new();
    let entry = b.add_node();
    // Headers going down: h1 .. hd, then latches coming back up l_d .. l_1;
    // latch l_i has a backedge to h_i and continues to l_{i-1} (or exit).
    let headers: Vec<NodeId> = (0..depth).map(|_| b.add_node()).collect();
    b.add_edge(entry, headers[0]);
    for w in headers.windows(2) {
        b.add_edge(w[0], w[1]);
    }
    let mut prev = headers[depth - 1];
    let mut latches = Vec::with_capacity(depth);
    for i in (0..depth).rev() {
        let l = b.add_node();
        b.add_edge(prev, l);
        b.add_edge(l, headers[i]); // repeat
        latches.push(l);
        prev = l;
    }
    let exit = b.add_node();
    b.add_edge(prev, exit);
    b.finish(entry, exit).expect("repeat-until nest is valid")
}

/// An irreducible "mesh": `k` nodes forming a clique-like cycle entered at
/// two different points from the entry.
pub fn irreducible_mesh(k: usize) -> Cfg {
    assert!(k >= 2);
    let mut b = CfgBuilder::new();
    let entry = b.add_node();
    let ring: Vec<NodeId> = (0..k).map(|_| b.add_node()).collect();
    // Two entries into the ring: classic irreducibility.
    b.add_edge(entry, ring[0]);
    b.add_edge(entry, ring[k / 2]);
    for i in 0..k {
        b.add_edge(ring[i], ring[(i + 1) % k]);
    }
    let exit = b.add_node();
    b.add_edge(ring[k - 1], exit);
    b.add_edge(ring[k / 2], exit);
    b.finish(entry, exit).expect("mesh is valid")
}

/// Why [`random_cfg`] could not produce a valid CFG.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RandomCfgError {
    /// `n < 3`: a CFG needs entry, exit and at least one interior node.
    TooSmall(usize),
    /// The repair loop could not converge to a valid CFG for this seed.
    /// Structurally unreachable for the generator's edge discipline, but
    /// reported as an error rather than a panic.
    Unrepairable {
        /// The seed that produced the pathological graph.
        seed: u64,
        /// The invariant still violated when the loop gave up.
        violation: ValidateCfgError,
    },
}

impl fmt::Display for RandomCfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RandomCfgError::TooSmall(n) => write!(
                f,
                "random_cfg needs n >= 3 (entry, exit, one interior node), got {n}"
            ),
            RandomCfgError::Unrepairable { seed, violation } => {
                write!(f, "seed {seed} produced an unrepairable graph: {violation}")
            }
        }
    }
}

impl Error for RandomCfgError {}

/// A seeded random valid CFG over `n` nodes with roughly `extra` additional
/// edges beyond a guaranteed skeleton.
///
/// Node 0 is the entry and node `n-1` the exit; extra edges may create
/// loops, parallel edges, self-loops and irreducible shapes. The same
/// `(n, extra, seed)` triple always yields the same graph.
///
/// # Errors
///
/// Returns [`RandomCfgError::TooSmall`] for `n < 3`. The repair loop runs
/// to a fixed point and re-validates after every pass, so
/// [`RandomCfgError::Unrepairable`] is a defensive error path rather than
/// an expected outcome.
pub fn random_cfg(n: usize, extra: usize, seed: u64) -> Result<Cfg, RandomCfgError> {
    if n < 3 {
        return Err(RandomCfgError::TooSmall(n));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CfgBuilder::new();
    let nodes = b.add_nodes(n);
    // Skeleton tree from the entry over interior nodes.
    b.add_edge(nodes[0], nodes[1]);
    for i in 2..n {
        let p = 1 + rng.gen_range(0..i - 1);
        b.add_edge(nodes[p], nodes[i]);
    }
    b.add_edge(nodes[n - 2], nodes[n - 1]);
    // Random extra edges between interior nodes (never from exit, never
    // into entry).
    for _ in 0..extra {
        let s = rng.gen_range(1..n - 1);
        let t = rng.gen_range(1..n);
        b.add_edge(nodes[s], nodes[t]);
    }
    // Repair to a fixed point: link forward any interior node that cannot
    // reach the exit, then recompute reachability on the *repaired* graph
    // rather than trusting a single pre-repair snapshot. Each pass adds a
    // direct edge to the exit for every offender, so one pass suffices in
    // practice; the loop guard keeps pathological seeds from panicking.
    for _pass in 0..n {
        let g = b.graph();
        let back = g.reversed().reachable_from(nodes[n - 1]);
        let offenders: Vec<usize> = (1..n - 1).filter(|&i| !back[i]).collect();
        if offenders.is_empty() {
            break;
        }
        for i in offenders {
            b.add_edge(nodes[i], nodes[n - 1]);
        }
    }
    b.finish(nodes[0], nodes[n - 1])
        .map_err(|violation| RandomCfgError::Unrepairable { seed, violation })
}

/// Shape of the arbitrary digraphs emitted by [`random_digraph`].
///
/// The base graph is `nodes` nodes with `edges` uniformly random directed
/// edges (self-loops and parallels included) and node 0 designated as the
/// entry. Each `force_*` switch then injects a dedicated violation of one
/// Definition-1 invariant, so tests can produce graphs that break each
/// invariant *on purpose* rather than by chance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DigraphConfig {
    /// Nodes in the random base graph (≥ 1; 0 is bumped to 1).
    pub nodes: usize,
    /// Uniformly random edges in the base graph.
    pub edges: usize,
    /// Add a backedge into the entry, violating "entry has no predecessors".
    pub force_entry_predecessor: bool,
    /// Add a two-node cycle with no incoming edges, violating "every node
    /// is reachable from the entry".
    pub force_unreachable: bool,
    /// Add a reachable two-node cycle with no path onwards, violating
    /// "every node reaches the exit".
    pub force_infinite_loop: bool,
    /// Add two fresh sinks fed from the entry, violating "unique exit".
    pub force_multiple_exits: bool,
    /// Add a self-loop on a reachable node.
    pub force_self_loop: bool,
}

impl Default for DigraphConfig {
    fn default() -> Self {
        DigraphConfig {
            nodes: 8,
            edges: 12,
            force_entry_predecessor: false,
            force_unreachable: false,
            force_infinite_loop: false,
            force_multiple_exits: false,
            force_self_loop: false,
        }
    }
}

/// A seeded arbitrary digraph with **no** CFG invariants: the fuzz input
/// for `pst_cfg::canonicalize`.
///
/// Returns the graph and its designated entry (node 0). The same
/// `(config, seed)` pair always yields the same graph. With all `force_*`
/// switches off the result is a uniformly random digraph, which already
/// violates Definition 1 with high probability; the switches make each
/// violation certain.
pub fn random_digraph(config: &DigraphConfig, seed: u64) -> (Graph, NodeId) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let n = config.nodes.max(1);
    let mut g = Graph::new();
    let nodes = g.add_nodes(n);
    for _ in 0..config.edges {
        let s = rng.gen_range(0..n);
        let t = rng.gen_range(0..n);
        g.add_edge(nodes[s], nodes[t]);
    }
    let entry = nodes[0];
    // A random node that is reachable by construction: the entry itself
    // when the base graph is too sparse to pick from.
    let reachable_node = |g: &Graph, rng: &mut StdRng| {
        let reach = g.reachable_from(entry);
        let candidates: Vec<usize> = (0..g.node_count()).filter(|&i| reach[i]).collect();
        NodeId::from_index(candidates[rng.gen_range(0..candidates.len())])
    };
    if config.force_entry_predecessor {
        let from = reachable_node(&g, &mut rng);
        g.add_edge(from, entry);
    }
    if config.force_unreachable {
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b);
        g.add_edge(b, a);
    }
    if config.force_infinite_loop {
        let from = reachable_node(&g, &mut rng);
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(from, a);
        g.add_edge(a, b);
        g.add_edge(b, a);
    }
    if config.force_multiple_exits {
        let s1 = g.add_node();
        let s2 = g.add_node();
        g.add_edge(entry, s1);
        g.add_edge(entry, s2);
    }
    if config.force_self_loop {
        let on = reachable_node(&g, &mut rng);
        g.add_edge(on, on);
    }
    (g, entry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pst_cfg::is_reducible;

    #[test]
    fn chain_shape() {
        let c = linear_chain(10);
        assert_eq!(c.node_count(), 10);
        assert_eq!(c.edge_count(), 9);
    }

    #[test]
    fn ladder_shape() {
        let c = diamond_ladder(3);
        assert_eq!(c.node_count(), 3 * 3 + 2);
        assert_eq!(c.edge_count(), 4 * 3 + 1);
        assert!(is_reducible(c.graph(), c.entry(), None));
    }

    #[test]
    fn while_nest_is_reducible_and_cyclic() {
        let c = nested_while_loops(4);
        assert!(is_reducible(c.graph(), c.entry(), None));
        let dfs = pst_cfg::Dfs::new(c.graph(), c.entry());
        let backs = c
            .graph()
            .edges()
            .filter(|&e| dfs.edge_kind(e) == Some(pst_cfg::DirectedEdgeKind::Back))
            .count();
        assert_eq!(backs, 4);
    }

    #[test]
    fn repeat_until_nest_shape() {
        let c = nested_repeat_until(5);
        assert!(is_reducible(c.graph(), c.entry(), None));
        let dfs = pst_cfg::Dfs::new(c.graph(), c.entry());
        let backs = c
            .graph()
            .edges()
            .filter(|&e| dfs.edge_kind(e) == Some(pst_cfg::DirectedEdgeKind::Back))
            .count();
        assert_eq!(backs, 5);
    }

    #[test]
    fn mesh_is_irreducible() {
        let c = irreducible_mesh(6);
        assert!(!is_reducible(c.graph(), c.entry(), None));
    }

    #[test]
    fn random_cfg_is_deterministic() {
        let a = random_cfg(20, 15, 42).unwrap();
        let b = random_cfg(20, 15, 42).unwrap();
        assert_eq!(a, b);
        let c = random_cfg(20, 15, 43).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn random_cfgs_are_valid_across_seeds() {
        for seed in 0..50 {
            let c = random_cfg(4 + (seed as usize % 30), seed as usize % 40, seed).unwrap();
            // CfgBuilder::finish already validated; sanity-check entry/exit.
            assert_eq!(c.graph().in_degree(c.entry()), 0);
            assert_eq!(c.graph().out_degree(c.exit()), 0);
        }
    }

    #[test]
    fn random_cfg_rejects_tiny_n() {
        assert_eq!(random_cfg(2, 5, 1).unwrap_err(), RandomCfgError::TooSmall(2));
        assert!(random_cfg(0, 0, 1).unwrap_err().to_string().contains("n >= 3"));
    }

    #[test]
    fn random_digraph_is_deterministic_and_forces_violations() {
        let config = DigraphConfig {
            force_entry_predecessor: true,
            force_unreachable: true,
            force_infinite_loop: true,
            force_multiple_exits: true,
            force_self_loop: true,
            ..DigraphConfig::default()
        };
        let (a, entry_a) = random_digraph(&config, 9);
        let (b, entry_b) = random_digraph(&config, 9);
        assert_eq!(entry_a, entry_b);
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
        // Entry gained a predecessor.
        assert!(a.in_degree(entry_a) > 0);
        // The forced unreachable pair really is unreachable.
        let reach = a.reachable_from(entry_a);
        assert!(reach.iter().any(|&r| !r));
        // At least two sinks exist (the forced exits).
        let sinks = a.nodes().filter(|&n| a.out_degree(n) == 0).count();
        assert!(sinks >= 2);
        // A self-loop exists.
        assert!(a.edges().any(|e| {
            let (u, v) = a.endpoints(e);
            u == v
        }));
    }

    #[test]
    fn random_digraph_plain_config_is_just_a_digraph() {
        let (g, entry) = random_digraph(&DigraphConfig::default(), 3);
        assert_eq!(g.node_count(), 8);
        assert_eq!(g.edge_count(), 12);
        assert_eq!(entry.index(), 0);
    }
}
