//! Direct CFG family generators.
//!
//! These produce the parameterized graph families used by the scaling
//! benchmarks: straight-line chains (the worst case for region *count*),
//! diamond ladders, nested repeat-until loops (the paper's quadratic
//! dominance-frontier example from §6.1), irreducible meshes (exercising
//! the "arbitrary flow graphs" claim), and seeded random CFGs.

use pst_cfg::{Cfg, CfgBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A straight-line chain of `n ≥ 2` nodes.
///
/// Every edge is cycle equivalent to every other, so the PST is a maximal
/// chain of sequentially composed regions — the stress case for region
/// bookkeeping.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn linear_chain(n: usize) -> Cfg {
    assert!(n >= 2, "a CFG needs at least entry and exit");
    let mut b = CfgBuilder::with_capacity(n, n - 1);
    let nodes = b.add_nodes(n);
    for w in nodes.windows(2) {
        b.add_edge(w[0], w[1]);
    }
    b.finish(nodes[0], nodes[n - 1]).expect("chain is valid")
}

/// `k` sequential if-then-else diamonds.
pub fn diamond_ladder(k: usize) -> Cfg {
    let mut b = CfgBuilder::with_capacity(3 * k + 2, 4 * k + 1);
    let entry = b.add_node();
    let mut prev = entry;
    for _ in 0..k {
        let cond = prev;
        let t = b.add_node();
        let e = b.add_node();
        let join = b.add_node();
        b.add_edge(cond, t);
        b.add_edge(cond, e);
        b.add_edge(t, join);
        b.add_edge(e, join);
        prev = join;
    }
    let exit = b.add_node();
    b.add_edge(prev, exit);
    b.finish(entry, exit).expect("ladder is valid")
}

/// `depth` nested while loops with a single innermost body block.
pub fn nested_while_loops(depth: usize) -> Cfg {
    let mut b = CfgBuilder::new();
    let entry = b.add_node();
    let mut headers = Vec::with_capacity(depth);
    let mut prev = entry;
    for _ in 0..depth {
        let h = b.add_node();
        b.add_edge(prev, h);
        headers.push(h);
        prev = h;
    }
    let body = b.add_node();
    b.add_edge(prev, body);
    let mut inner = body;
    // Close the loops inside-out: body -> innermost header, and each
    // header's "done" edge steps to the enclosing header or onwards.
    let exit_chain: Vec<NodeId> = (0..depth).map(|_| b.add_node()).collect();
    for (i, &h) in headers.iter().enumerate().rev() {
        b.add_edge(inner, h); // backedge
        b.add_edge(h, exit_chain[i]); // loop exit
        inner = exit_chain[i];
    }
    let exit = b.add_node();
    b.add_edge(exit_chain[0], exit);
    b.finish(entry, exit).expect("nest is valid")
}

/// `depth` nested repeat-until (do-while) loops — the shape whose
/// dominance frontiers grow quadratically (Cytron et al., cited in §6.1),
/// which the PST-based SSA construction sidesteps.
pub fn nested_repeat_until(depth: usize) -> Cfg {
    assert!(depth >= 1);
    let mut b = CfgBuilder::new();
    let entry = b.add_node();
    // Headers going down: h1 .. hd, then latches coming back up l_d .. l_1;
    // latch l_i has a backedge to h_i and continues to l_{i-1} (or exit).
    let headers: Vec<NodeId> = (0..depth).map(|_| b.add_node()).collect();
    b.add_edge(entry, headers[0]);
    for w in headers.windows(2) {
        b.add_edge(w[0], w[1]);
    }
    let mut prev = headers[depth - 1];
    let mut latches = Vec::with_capacity(depth);
    for i in (0..depth).rev() {
        let l = b.add_node();
        b.add_edge(prev, l);
        b.add_edge(l, headers[i]); // repeat
        latches.push(l);
        prev = l;
    }
    let exit = b.add_node();
    b.add_edge(prev, exit);
    b.finish(entry, exit).expect("repeat-until nest is valid")
}

/// An irreducible "mesh": `k` nodes forming a clique-like cycle entered at
/// two different points from the entry.
pub fn irreducible_mesh(k: usize) -> Cfg {
    assert!(k >= 2);
    let mut b = CfgBuilder::new();
    let entry = b.add_node();
    let ring: Vec<NodeId> = (0..k).map(|_| b.add_node()).collect();
    // Two entries into the ring: classic irreducibility.
    b.add_edge(entry, ring[0]);
    b.add_edge(entry, ring[k / 2]);
    for i in 0..k {
        b.add_edge(ring[i], ring[(i + 1) % k]);
    }
    let exit = b.add_node();
    b.add_edge(ring[k - 1], exit);
    b.add_edge(ring[k / 2], exit);
    b.finish(entry, exit).expect("mesh is valid")
}

/// A seeded random valid CFG over `n` nodes with roughly `extra` additional
/// edges beyond a guaranteed skeleton.
///
/// Node 0 is the entry and node `n-1` the exit; extra edges may create
/// loops, parallel edges, self-loops and irreducible shapes. The same
/// `(n, extra, seed)` triple always yields the same graph.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn random_cfg(n: usize, extra: usize, seed: u64) -> Cfg {
    assert!(n >= 3, "need entry, exit and at least one interior node");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CfgBuilder::new();
    let nodes = b.add_nodes(n);
    // Skeleton tree from the entry over interior nodes.
    b.add_edge(nodes[0], nodes[1]);
    for i in 2..n {
        let p = 1 + rng.gen_range(0..i - 1);
        b.add_edge(nodes[p], nodes[i]);
    }
    b.add_edge(nodes[n - 2], nodes[n - 1]);
    // Random extra edges between interior nodes (never from exit, never
    // into entry).
    for _ in 0..extra {
        let s = rng.gen_range(1..n - 1);
        let t = rng.gen_range(1..n);
        b.add_edge(nodes[s], nodes[t]);
    }
    // Repair: link forward any interior node that cannot reach the exit.
    let g = b.graph().clone();
    let back = g.reversed().reachable_from(nodes[n - 1]);
    for i in 1..n - 1 {
        if !back[i] {
            b.add_edge(nodes[i], nodes[n - 1]);
        }
    }
    b.finish(nodes[0], nodes[n - 1])
        .expect("repaired random graph is a valid CFG")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pst_cfg::is_reducible;

    #[test]
    fn chain_shape() {
        let c = linear_chain(10);
        assert_eq!(c.node_count(), 10);
        assert_eq!(c.edge_count(), 9);
    }

    #[test]
    fn ladder_shape() {
        let c = diamond_ladder(3);
        assert_eq!(c.node_count(), 3 * 3 + 2);
        assert_eq!(c.edge_count(), 4 * 3 + 1);
        assert!(is_reducible(c.graph(), c.entry(), None));
    }

    #[test]
    fn while_nest_is_reducible_and_cyclic() {
        let c = nested_while_loops(4);
        assert!(is_reducible(c.graph(), c.entry(), None));
        let dfs = pst_cfg::Dfs::new(c.graph(), c.entry());
        let backs = c
            .graph()
            .edges()
            .filter(|&e| dfs.edge_kind(e) == Some(pst_cfg::DirectedEdgeKind::Back))
            .count();
        assert_eq!(backs, 4);
    }

    #[test]
    fn repeat_until_nest_shape() {
        let c = nested_repeat_until(5);
        assert!(is_reducible(c.graph(), c.entry(), None));
        let dfs = pst_cfg::Dfs::new(c.graph(), c.entry());
        let backs = c
            .graph()
            .edges()
            .filter(|&e| dfs.edge_kind(e) == Some(pst_cfg::DirectedEdgeKind::Back))
            .count();
        assert_eq!(backs, 5);
    }

    #[test]
    fn mesh_is_irreducible() {
        let c = irreducible_mesh(6);
        assert!(!is_reducible(c.graph(), c.entry(), None));
    }

    #[test]
    fn random_cfg_is_deterministic() {
        let a = random_cfg(20, 15, 42);
        let b = random_cfg(20, 15, 42);
        assert_eq!(a, b);
        let c = random_cfg(20, 15, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn random_cfgs_are_valid_across_seeds() {
        for seed in 0..50 {
            let c = random_cfg(4 + (seed as usize % 30), seed as usize % 40, seed);
            // CfgBuilder::finish already validated; sanity-check entry/exit.
            assert_eq!(c.graph().in_degree(c.entry()), 0);
            assert_eq!(c.graph().out_degree(c.exit()), 0);
        }
    }
}
