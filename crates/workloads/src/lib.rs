//! Workload generation for the Program Structure Tree reproduction.
//!
//! The paper's evaluation (§4, §6) runs on 254 FORTRAN procedures from the
//! Perfect Club, SPEC89 and Linpack suites. Those inputs are not
//! redistributable, so this crate provides the substitution documented in
//! DESIGN.md:
//!
//! * [`generate_function`] — a seeded random program generator over the
//!   `pst-lang` AST with a realistic structured/unstructured mix,
//! * [`paper_corpus`] — a deterministic 254-procedure corpus matching the
//!   paper's per-program procedure counts and size distribution
//!   ([`PAPER_TABLE`]), and
//! * the `gencfg` family generators ([`linear_chain`], [`diamond_ladder`],
//!   [`nested_while_loops`], [`nested_repeat_until`], [`irreducible_mesh`],
//!   [`random_cfg`]) used by the scaling and ablation benchmarks, and
//! * [`random_digraph`] — seeded *arbitrary* digraphs with optional forced
//!   Definition-1 violations ([`DigraphConfig`]), the fuzz inputs for
//!   `pst_cfg::canonicalize`.
//!
//! # Examples
//!
//! ```
//! use pst_workloads::paper_corpus;
//! let corpus = paper_corpus(1994);
//! let total_nodes: usize = corpus.iter().map(|p| p.lowered.cfg.node_count()).sum();
//! assert!(total_nodes > 1000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod corpus;
mod gencfg;
mod genprog;

pub use corpus::{paper_corpus, Corpus, Procedure, PAPER_TABLE};
pub use gencfg::{
    diamond_ladder, irreducible_mesh, linear_chain, nested_repeat_until, nested_while_loops,
    random_cfg, random_digraph, DigraphConfig, RandomCfgError,
};
pub use genprog::{generate_function, ProgramGenConfig};
