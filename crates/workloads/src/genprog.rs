//! Seeded random program generator.
//!
//! Produces syntactically valid mini-language functions with a realistic
//! mix of control structure: mostly structured conditionals, loops and
//! switches (the paper finds 182 of 254 procedures completely structured),
//! plus a configurable fraction of *goto templates* that introduce
//! unstructured — and occasionally irreducible — control flow without ever
//! producing an invalid CFG.

use pst_lang::{BinOp, Block, Expr, Function, Stmt, UnOp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tuning knobs for the generator.
#[derive(Clone, Debug)]
pub struct ProgramGenConfig {
    /// Approximate number of statements to emit.
    pub target_stmts: usize,
    /// Maximum nesting depth of structured constructs.
    pub max_depth: usize,
    /// Number of distinct scalar variables to draw from.
    pub num_vars: usize,
    /// Probability that a compound-statement slot becomes a goto template
    /// (unstructured control flow).
    pub goto_prob: f64,
    /// Probability that a compound slot is a loop (vs conditional/switch).
    pub loop_prob: f64,
}

impl Default for ProgramGenConfig {
    fn default() -> Self {
        ProgramGenConfig {
            target_stmts: 40,
            max_depth: 5,
            num_vars: 8,
            goto_prob: 0.04,
            loop_prob: 0.3,
        }
    }
}

/// Generates one deterministic random function.
///
/// The same `(config, seed)` pair always produces the same AST. The
/// function is guaranteed to lower to a valid CFG
/// ([`pst_lang::lower_function`] cannot fail on generator output — the
/// property tests check this across seeds).
///
/// # Examples
///
/// ```
/// use pst_workloads::{generate_function, ProgramGenConfig};
/// let f = generate_function("p0", &ProgramGenConfig::default(), 7);
/// let lowered = pst_lang::lower_function(&f).unwrap();
/// assert!(lowered.cfg.node_count() >= 2);
/// ```
pub fn generate_function(name: &str, config: &ProgramGenConfig, seed: u64) -> Function {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut gen = Gen {
        config: config.clone(),
        rng: &mut rng,
        budget: config.target_stmts as i64,
        label_counter: 0,
    };
    let params: Vec<String> = (0..1 + gen.rng.gen_range(0..3))
        .map(|i| format!("p{i}"))
        .collect();
    let mut stmts = Vec::new();
    // Seed every variable so uses are never of undefined names (harmless
    // for CFG shape, keeps SSA examples meaningful).
    for v in 0..config.num_vars {
        stmts.push(Stmt::Assign {
            target: format!("v{v}"),
            value: Expr::Num(v as i64),
        });
    }
    // Top level: keep emitting until the statement budget is spent (inner
    // blocks are bounded locally by `stmt_list`).
    while gen.budget > 0 {
        gen.stmt(&mut stmts, 0);
    }
    stmts.push(Stmt::Return(Some(gen.expr(1))));
    Function {
        name: name.to_string(),
        params,
        body: Block::new(stmts),
    }
}

struct Gen<'r> {
    config: ProgramGenConfig,
    rng: &'r mut StdRng,
    budget: i64,
    label_counter: u32,
}

impl Gen<'_> {
    fn var(&mut self) -> String {
        format!("v{}", self.rng.gen_range(0..self.config.num_vars))
    }

    fn fresh_label(&mut self) -> String {
        self.label_counter += 1;
        format!("L{}", self.label_counter)
    }

    fn expr(&mut self, depth: usize) -> Expr {
        if depth == 0 || self.rng.gen_bool(0.4) {
            return if self.rng.gen_bool(0.7) {
                Expr::Var(self.var())
            } else {
                Expr::Num(self.rng.gen_range(-4..10))
            };
        }
        match self.rng.gen_range(0..8) {
            // Negated literals fold to plain literals (mirrors the parser).
            0 => match self.expr(depth - 1) {
                Expr::Num(n) => Expr::Num(-n),
                e => Expr::Unary(UnOp::Neg, Box::new(e)),
            },
            1 => Expr::Call(
                format!("f{}", self.rng.gen_range(0..3)),
                vec![self.expr(depth - 1)],
            ),
            _ => {
                let ops = [
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                    BinOp::Lt,
                    BinOp::Le,
                    BinOp::Eq,
                    BinOp::Ne,
                    BinOp::And,
                ];
                let op = ops[self.rng.gen_range(0..ops.len())];
                Expr::Binary(
                    op,
                    Box::new(self.expr(depth - 1)),
                    Box::new(self.expr(depth - 1)),
                )
            }
        }
    }

    fn cond(&mut self) -> Expr {
        Expr::Binary(
            if self.rng.gen_bool(0.5) {
                BinOp::Lt
            } else {
                BinOp::Ne
            },
            Box::new(Expr::Var(self.var())),
            Box::new(self.expr(1)),
        )
    }

    fn assign(&mut self) -> Stmt {
        Stmt::Assign {
            target: self.var(),
            value: self.expr(2),
        }
    }

    /// Emits statements into `out` until the local share of the budget is
    /// spent.
    fn stmt_list(&mut self, out: &mut Vec<Stmt>, depth: usize) {
        let locally = 1 + self.rng.gen_range(0..6);
        for _ in 0..locally {
            if self.budget <= 0 {
                return;
            }
            self.stmt(out, depth);
        }
    }

    fn stmt(&mut self, out: &mut Vec<Stmt>, depth: usize) {
        self.budget -= 1;
        // Leaf statements dominate, like real code, and nesting gets
        // exponentially rarer with depth — real programs are broad and
        // shallow (the paper's Figure 5).
        let leaf_prob = (0.45 + 0.16 * depth as f64).min(0.97);
        if depth >= self.config.max_depth || self.rng.gen_bool(leaf_prob) {
            out.push(self.assign());
            return;
        }
        if self.rng.gen_bool(self.config.goto_prob) {
            self.goto_template(out, depth);
            return;
        }
        if self.rng.gen_bool(self.config.loop_prob) {
            match self.rng.gen_range(0..3) {
                0 => {
                    let mut body = Vec::new();
                    self.stmt_list(&mut body, depth + 1);
                    self.maybe_break_continue(&mut body);
                    out.push(Stmt::While {
                        cond: self.cond(),
                        body: Block::new(body),
                    });
                }
                1 => {
                    let mut body = Vec::new();
                    self.stmt_list(&mut body, depth + 1);
                    out.push(Stmt::DoWhile {
                        body: Block::new(body),
                        cond: self.cond(),
                    });
                }
                _ => {
                    let mut body = Vec::new();
                    self.stmt_list(&mut body, depth + 1);
                    let i = self.var();
                    out.push(Stmt::For {
                        init: Box::new(Stmt::Assign {
                            target: i.clone(),
                            value: Expr::Num(0),
                        }),
                        cond: Expr::Binary(
                            BinOp::Lt,
                            Box::new(Expr::Var(i.clone())),
                            Box::new(self.expr(1)),
                        ),
                        step: Box::new(Stmt::Assign {
                            target: i.clone(),
                            value: Expr::Binary(
                                BinOp::Add,
                                Box::new(Expr::Var(i)),
                                Box::new(Expr::Num(1)),
                            ),
                        }),
                        body: Block::new(body),
                    });
                }
            }
            return;
        }
        if self.rng.gen_bool(0.2) {
            // switch with 2-4 arms
            let arms = 2 + self.rng.gen_range(0..3);
            let mut cases = Vec::new();
            for k in 0..arms {
                let mut body = Vec::new();
                self.stmt_list(&mut body, depth + 1);
                cases.push((k as i64, Block::new(body)));
            }
            let default = if self.rng.gen_bool(0.6) {
                let mut body = Vec::new();
                self.stmt_list(&mut body, depth + 1);
                Some(Block::new(body))
            } else {
                None
            };
            out.push(Stmt::Switch {
                scrutinee: Expr::Var(self.var()),
                cases,
                default,
            });
            return;
        }
        // Conditional.
        let mut then_branch = Vec::new();
        self.stmt_list(&mut then_branch, depth + 1);
        let else_branch = if self.rng.gen_bool(0.5) {
            let mut b = Vec::new();
            self.stmt_list(&mut b, depth + 1);
            Some(Block::new(b))
        } else {
            None
        };
        out.push(Stmt::If {
            cond: self.cond(),
            then_branch: Block::new(then_branch),
            else_branch,
        });
    }

    /// Occasionally put a guarded break/continue into a loop body.
    fn maybe_break_continue(&mut self, body: &mut Vec<Stmt>) {
        if self.rng.gen_bool(0.3) {
            let stmt = if self.rng.gen_bool(0.5) {
                Stmt::Break
            } else {
                Stmt::Continue
            };
            let pos = self.rng.gen_range(0..=body.len());
            body.insert(
                pos,
                Stmt::If {
                    cond: self.cond(),
                    then_branch: Block::new(vec![stmt]),
                    else_branch: None,
                },
            );
        }
    }

    /// Unstructured-control-flow templates. Each template is closed (labels
    /// defined within) and always lowers to a valid CFG.
    fn goto_template(&mut self, out: &mut Vec<Stmt>, _depth: usize) {
        match self.rng.gen_range(0..4) {
            // Guarded backward goto: an extra retry loop.
            0 => {
                let l = self.fresh_label();
                out.push(Stmt::Label(l.clone()));
                out.push(self.assign());
                out.push(Stmt::If {
                    cond: self.cond(),
                    then_branch: Block::new(vec![Stmt::Goto(l)]),
                    else_branch: None,
                });
            }
            // Forward goto skipping over a straight-line stretch.
            1 => {
                let l = self.fresh_label();
                out.push(Stmt::If {
                    cond: self.cond(),
                    then_branch: Block::new(vec![Stmt::Goto(l.clone())]),
                    else_branch: None,
                });
                out.push(self.assign());
                out.push(self.assign());
                out.push(Stmt::Label(l));
            }
            // Acyclic "crossing jumps" template: two guarded jumps into a
            // shared landing pad — an unstructured dag region.
            2 => {
                let l = self.fresh_label();
                out.push(Stmt::If {
                    cond: self.cond(),
                    then_branch: Block::new(vec![Stmt::Goto(l.clone())]),
                    else_branch: None,
                });
                out.push(self.assign());
                out.push(Stmt::If {
                    cond: self.cond(),
                    then_branch: Block::new(vec![Stmt::Goto(l.clone())]),
                    else_branch: None,
                });
                out.push(self.assign());
                out.push(Stmt::Label(l));
                out.push(self.assign());
            }
            // Irreducible template: two mutually-reachable labels entered
            // from a branch (the classic two-header cycle).
            _ => {
                let a = self.fresh_label();
                let b = self.fresh_label();
                let c = self.fresh_label();
                out.push(Stmt::If {
                    cond: self.cond(),
                    then_branch: Block::new(vec![Stmt::Goto(b.clone())]),
                    else_branch: None,
                });
                out.push(Stmt::Label(a.clone()));
                out.push(self.assign());
                out.push(Stmt::Goto(c.clone()));
                out.push(Stmt::Label(b));
                out.push(self.assign());
                out.push(Stmt::Label(c));
                out.push(Stmt::If {
                    cond: self.cond(),
                    then_branch: Block::new(vec![Stmt::Goto(a)]),
                    else_branch: None,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pst_lang::{lower_function, parse_program, pretty_function};

    #[test]
    fn deterministic_per_seed() {
        let c = ProgramGenConfig::default();
        assert_eq!(generate_function("f", &c, 5), generate_function("f", &c, 5));
        assert_ne!(generate_function("f", &c, 5), generate_function("f", &c, 6));
    }

    #[test]
    fn every_seed_lowers_cleanly() {
        let c = ProgramGenConfig {
            goto_prob: 0.15, // stress the unstructured templates
            ..ProgramGenConfig::default()
        };
        for seed in 0..200 {
            let f = generate_function("f", &c, seed);
            let lowered =
                lower_function(&f).unwrap_or_else(|e| panic!("seed {seed}: lowering failed: {e}"));
            assert!(lowered.cfg.node_count() >= 2);
        }
    }

    #[test]
    fn generated_source_reparses() {
        let c = ProgramGenConfig::default();
        for seed in 0..20 {
            let f = generate_function("f", &c, seed);
            let printed = pretty_function(&f);
            let p =
                parse_program(&printed).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{printed}"));
            assert_eq!(p.functions[0], f);
        }
    }

    #[test]
    fn target_size_is_roughly_respected() {
        let c = ProgramGenConfig {
            target_stmts: 200,
            ..ProgramGenConfig::default()
        };
        let f = generate_function("f", &c, 1);
        let lowered = lower_function(&f).unwrap();
        let stmts = lowered.statement_count();
        assert!(stmts >= 100, "too small: {stmts}");
    }

    #[test]
    fn goto_templates_produce_irreducible_cfgs_somewhere() {
        let c = ProgramGenConfig {
            goto_prob: 0.3,
            target_stmts: 80,
            ..ProgramGenConfig::default()
        };
        let mut found = false;
        for seed in 0..50 {
            let f = generate_function("f", &c, seed);
            let lowered = lower_function(&f).unwrap();
            if !pst_cfg::is_reducible(lowered.cfg.graph(), lowered.cfg.entry(), None) {
                found = true;
                break;
            }
        }
        assert!(found, "no irreducible CFG in 50 seeds");
    }
}
