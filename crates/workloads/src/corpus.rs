//! The synthetic Perfect Club / SPEC89 / Linpack corpus.
//!
//! The paper's empirical section (§4) analyzes 254 FORTRAN procedures from
//! ten programs totalling 21 549 source lines. We cannot redistribute those
//! suites, so this module generates a deterministic stand-in with the same
//! *shape*: the same per-program procedure counts, procedure sizes drawn to
//! match each program's lines-per-procedure ratio (with a heavy-ish tail,
//! as in real code), a mostly structured control-flow mix, and a small
//! unstructured fraction. DESIGN.md documents why this substitution
//! preserves the paper's claims; EXPERIMENTS.md records the measured
//! numbers side by side with the paper's.

use pst_lang::{lower_function, LoweredFunction};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{generate_function, ProgramGenConfig};

/// The paper's Table of benchmark programs: `(suite, program, lines,
/// procedures)`.
pub const PAPER_TABLE: &[(&str, &str, usize, usize)] = &[
    ("Perfect", "APS", 6105, 97),
    ("Perfect", "LGS", 2389, 34),
    ("Perfect", "TFS", 1986, 27),
    ("Perfect", "TIS", 485, 7),
    ("SPEC89", "dnasa7", 1105, 17),
    ("SPEC89", "doduc", 5334, 41),
    ("SPEC89", "fpppp", 2718, 14),
    ("SPEC89", "matrix300", 439, 5),
    ("SPEC89", "tomcatv", 195, 1),
    ("", "linpack", 793, 11),
];

/// One generated procedure of the corpus.
#[derive(Clone, Debug)]
pub struct Procedure {
    /// Suite the procedure belongs to (`Perfect`, `SPEC89`, or empty).
    pub suite: &'static str,
    /// Program name from the paper's table.
    pub program: &'static str,
    /// The lowered function (CFG + def/use side tables).
    pub lowered: LoweredFunction,
    /// Approximate source-line count charged against the program's budget.
    pub lines: usize,
}

/// The whole corpus: 254 procedures across ten programs.
#[derive(Clone, Debug)]
pub struct Corpus {
    /// All procedures, grouped by program in table order.
    pub procedures: Vec<Procedure>,
}

impl Corpus {
    /// Total number of procedures (254, matching the paper).
    pub fn len(&self) -> usize {
        self.procedures.len()
    }

    /// Whether the corpus is empty (never, after generation).
    pub fn is_empty(&self) -> bool {
        self.procedures.is_empty()
    }

    /// Iterates over the procedures.
    pub fn iter(&self) -> impl Iterator<Item = &Procedure> {
        self.procedures.iter()
    }
}

/// Generates the paper-shaped corpus.
///
/// Deterministic in `seed`; the experiments fix `seed = 1994`.
///
/// # Examples
///
/// ```
/// let corpus = pst_workloads::paper_corpus(1994);
/// assert_eq!(corpus.len(), 254);
/// ```
pub fn paper_corpus(seed: u64) -> Corpus {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut procedures = Vec::with_capacity(254);
    for &(suite, program, lines, procs) in PAPER_TABLE {
        let sizes = procedure_sizes(&mut rng, lines, procs);
        for (i, stmts) in sizes.into_iter().enumerate() {
            let target = (stmts * 7 / 10).max(3);
            let config = ProgramGenConfig {
                // FORTRAN source lines include declarations and comments;
                // scale the statement budget down so the corpus yields a
                // region count of the paper's order (≈8600 across 254 PSTs).
                target_stmts: target,
                max_depth: 6,
                // Scale the variable pool with procedure size: real code
                // has many locals, each touched in only a few places —
                // that locality is what Figure 10's sparsity measures.
                num_vars: (4 + target / 3).min(90) + rng.gen_range(0..4),
                // ~30 % of procedures get some unstructured control flow,
                // echoing the paper's 72-of-254.
                goto_prob: if rng.gen_bool(0.3) { 0.15 } else { 0.0 },
                loop_prob: 0.3,
            };
            let f = generate_function(&format!("{program}_{i}"), &config, rng.gen::<u64>());
            let lowered = lower_function(&f).expect("generator output always lowers");
            procedures.push(Procedure {
                suite,
                program,
                lowered,
                lines: stmts,
            });
        }
    }
    Corpus { procedures }
}

/// Splits a program's line budget across its procedures with a skewed
/// (roughly lognormal) distribution: many small procedures, a few large
/// ones — the shape of real FORTRAN code.
fn procedure_sizes(rng: &mut StdRng, lines: usize, procs: usize) -> Vec<usize> {
    let mut weights: Vec<f64> = (0..procs)
        .map(|_| {
            // exp of a roughly-normal sample: sum of uniforms.
            let normalish: f64 = (0..6).map(|_| rng.gen_range(-0.5..0.5)).sum::<f64>() * 1.2;
            normalish.exp()
        })
        .collect();
    let total: f64 = weights.iter().sum();
    for w in &mut weights {
        *w = (*w / total) * lines as f64;
    }
    weights.into_iter().map(|w| (w as usize).max(3)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_254_procedures() {
        let c = paper_corpus(1994);
        assert_eq!(c.len(), 254);
        assert!(!c.is_empty());
    }

    #[test]
    fn per_program_counts_match_paper_table() {
        let c = paper_corpus(1994);
        for &(_, program, _, procs) in PAPER_TABLE {
            let count = c.iter().filter(|p| p.program == program).count();
            assert_eq!(count, procs, "{program}");
        }
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = paper_corpus(7);
        let b = paper_corpus(7);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.lowered.cfg, y.lowered.cfg);
        }
    }

    #[test]
    fn sizes_are_skewed_but_bounded() {
        let mut rng = StdRng::seed_from_u64(3);
        let sizes = procedure_sizes(&mut rng, 6000, 97);
        assert_eq!(sizes.len(), 97);
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(min >= 3);
        assert!(max > min * 2, "distribution should be skewed");
    }

    #[test]
    fn every_procedure_is_a_valid_cfg() {
        let c = paper_corpus(11);
        for p in c.iter() {
            assert!(p.lowered.cfg.node_count() >= 2);
            assert_eq!(p.lowered.cfg.graph().in_degree(p.lowered.cfg.entry()), 0);
        }
    }
}
