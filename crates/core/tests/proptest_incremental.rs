//! Property tests: incremental PST maintenance under edge insertion
//! produces exactly the tree a from-scratch rebuild produces, on random
//! CFGs and random (valid) insertions — including repeated insertions.

use proptest::prelude::*;
use pst_cfg::NodeId;
use pst_core::{insert_edge, ProgramStructureTree};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn spliced_tree_equals_rebuilt_tree(
        n in 4usize..24,
        extra in 0usize..24,
        seed in 0u64..10_000,
        us in 0usize..1000,
        vs in 0usize..1000,
    ) {
        // pst-core cannot depend on pst-workloads (cycle), so inline the
        // same seeded generator via the public helper in pst-cfg.
        let cfg = build_random_cfg(n, extra, seed);
        let pst = ProgramStructureTree::build(&cfg);
        // Any non-exit source, non-entry target is a valid insertion.
        let u = NodeId::from_index(us % (cfg.node_count() - 1)); // never exit? exit = n-1
        let u = if u == cfg.exit() { cfg.entry() } else { u };
        let v = NodeId::from_index(1 + vs % (cfg.node_count() - 1));
        let grown = insert_edge(&cfg, &pst, u, v).expect("valid insertion");
        let fresh = ProgramStructureTree::build(&grown.cfg);
        prop_assert_eq!(grown.pst.signature(), fresh.signature());
        prop_assert!(grown.rebuilt_nodes <= grown.cfg.node_count());
    }

    #[test]
    fn three_insertions_in_sequence(
        n in 4usize..16,
        extra in 0usize..12,
        seed in 0u64..5_000,
        picks in proptest::collection::vec((0usize..1000, 0usize..1000), 3),
    ) {
        let mut cfg = build_random_cfg(n, extra, seed);
        let mut pst = ProgramStructureTree::build(&cfg);
        for (us, vs) in picks {
            let u = NodeId::from_index(us % (cfg.node_count() - 1));
            let u = if u == cfg.exit() { cfg.entry() } else { u };
            let v = NodeId::from_index(1 + vs % (cfg.node_count() - 1));
            let grown = insert_edge(&cfg, &pst, u, v).expect("valid insertion");
            cfg = grown.cfg;
            pst = grown.pst;
            let fresh = ProgramStructureTree::build(&cfg);
            prop_assert_eq!(pst.signature(), fresh.signature());
        }
    }
}

/// Seeded random valid CFG (same construction as `pst_workloads::random_cfg`,
/// duplicated here to avoid a dependency cycle).
fn build_random_cfg(n: usize, extra: usize, seed: u64) -> pst_cfg::Cfg {
    use pst_cfg::CfgBuilder;
    // Tiny deterministic PRNG (xorshift) — no rand dependency games.
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut next = move |bound: usize| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state as usize) % bound.max(1)
    };
    let mut b = CfgBuilder::new();
    let nodes = b.add_nodes(n);
    b.add_edge(nodes[0], nodes[1]);
    for i in 2..n {
        let p = 1 + next(i - 1);
        b.add_edge(nodes[p], nodes[i]);
    }
    b.add_edge(nodes[n - 2], nodes[n - 1]);
    for _ in 0..extra {
        let s = 1 + next(n - 2);
        let t = 1 + next(n - 1);
        b.add_edge(nodes[s], nodes[t]);
    }
    let g = b.graph().clone();
    let back = g.reversed().reachable_from(nodes[n - 1]);
    for i in 1..n - 1 {
        if !back[i] {
            b.add_edge(nodes[i], nodes[n - 1]);
        }
    }
    b.finish(nodes[0], nodes[n - 1]).expect("valid CFG")
}
