//! Property tests: the linear-time cycle-equivalence algorithm agrees with
//! the quadratic reachability oracles on random graphs.

use proptest::prelude::*;
use pst_cfg::{Graph, NodeId};
use pst_core::{cycle_equiv_slow_directed, cycle_equiv_slow_undirected, CycleEquiv};

/// Random strongly connected multigraph: a spanning cycle over a random
/// permutation plus random extra edges (self-loops and parallels allowed).
fn strongly_connected_graph(max_nodes: usize, max_extra: usize) -> impl Strategy<Value = Graph> {
    (2..max_nodes)
        .prop_flat_map(move |n| {
            (
                Just(n),
                proptest::sample::subsequence((0..n).collect::<Vec<_>>(), 0..n),
                proptest::collection::vec((0..n, 0..n), 0..max_extra),
            )
        })
        .prop_map(|(n, perm_seed, extra)| {
            let mut g = Graph::new();
            let nodes = g.add_nodes(n);
            // Spanning cycle in a permuted order derived from perm_seed.
            let mut order: Vec<usize> = perm_seed;
            for i in 0..n {
                if !order.contains(&i) {
                    order.push(i);
                }
            }
            for i in 0..n {
                g.add_edge(nodes[order[i]], nodes[order[(i + 1) % n]]);
            }
            for (a, b) in extra {
                g.add_edge(nodes[a], nodes[b]);
            }
            g
        })
}

/// Random connected (but not necessarily strongly connected) multigraph:
/// a random spanning tree plus random extra edges.
fn connected_graph(max_nodes: usize, max_extra: usize) -> impl Strategy<Value = Graph> {
    (2..max_nodes)
        .prop_flat_map(move |n| {
            (
                Just(n),
                proptest::collection::vec(0..1_000_000usize, n - 1),
                proptest::collection::vec((0..n, 0..n), 0..max_extra),
            )
        })
        .prop_map(|(n, parents, extra)| {
            let mut g = Graph::new();
            let nodes = g.add_nodes(n);
            for i in 1..n {
                let p = parents[i - 1] % i;
                g.add_edge(nodes[p], nodes[i]);
            }
            for (a, b) in extra {
                g.add_edge(nodes[a], nodes[b]);
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Theorem 3 + Figure 4: on strongly connected graphs the fast
    /// algorithm, the directed oracle, and the undirected oracle agree.
    #[test]
    fn fast_matches_oracles_on_strongly_connected(g in strongly_connected_graph(14, 20)) {
        let fast = CycleEquiv::compute(&g, NodeId::from_index(0)).unwrap();
        let slow_u = cycle_equiv_slow_undirected(&g, None).unwrap();
        prop_assert_eq!(&fast, &slow_u);
        let slow_d = cycle_equiv_slow_directed(&g, None).unwrap();
        prop_assert_eq!(&fast, &slow_d);
    }

    /// On arbitrary connected graphs the fast algorithm computes the
    /// undirected notion (bridges in one vacuous class, self-loops
    /// singletons).
    #[test]
    fn fast_matches_undirected_oracle_on_connected(g in connected_graph(14, 16)) {
        let fast = CycleEquiv::compute(&g, NodeId::from_index(0)).unwrap();
        let slow_u = cycle_equiv_slow_undirected(&g, None).unwrap();
        prop_assert_eq!(&fast, &slow_u);
    }

    /// The DFS root must not influence the partition.
    #[test]
    fn root_independence(g in strongly_connected_graph(12, 16), root_seed in 0usize..100) {
        let a = CycleEquiv::compute(&g, NodeId::from_index(0)).unwrap();
        let root = NodeId::from_index(root_seed % g.node_count());
        let b = CycleEquiv::compute(&g, root).unwrap();
        // Class ids are renumbered in edge order, so equal partitions give
        // equal arrays.
        prop_assert_eq!(a, b);
    }

    /// Classes are well-formed: dense ids, every edge classified.
    #[test]
    fn classes_are_dense(g in strongly_connected_graph(14, 20)) {
        let ce = CycleEquiv::compute(&g, NodeId::from_index(0)).unwrap();
        let mut seen = vec![false; ce.num_classes()];
        for e in g.edges() {
            let c = ce.class(e) as usize;
            prop_assert!(c < ce.num_classes());
            seen[c] = true;
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }
}
