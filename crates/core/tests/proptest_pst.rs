//! Property tests for SESE detection and PST construction, validated
//! against definitional oracles built from dominator trees on the
//! edge-split graph.

use proptest::prelude::*;
use pst_cfg::{Cfg, CfgBuilder, EdgeSplit, NodeId};
use pst_core::ProgramStructureTree;
use pst_dominators::{dominator_tree, dominator_tree_in, Direction};

/// Random *valid* CFG: a random graph over `n` nodes repaired so that node
/// 0 is the entry, node `n-1` the exit, every node is reachable from the
/// entry and reaches the exit, and the entry/exit degree invariants hold.
fn random_cfg(max_nodes: usize, max_extra: usize) -> impl Strategy<Value = Cfg> {
    (3..max_nodes)
        .prop_flat_map(move |n| {
            (
                Just(n),
                proptest::collection::vec((1..n - 1, 1..n), 0..max_extra),
                proptest::collection::vec(0..1_000_000usize, n),
            )
        })
        .prop_map(|(n, extra, seeds)| {
            let mut b = CfgBuilder::new();
            let nodes = b.add_nodes(n);
            // Skeleton: entry -> 1, random tree over middle nodes, with a
            // path onwards to exit so validity is guaranteed.
            b.add_edge(nodes[0], nodes[1]);
            for i in 2..n {
                let p = 1 + seeds[i] % (i - 1); // parent among 1..i
                b.add_edge(nodes[p], nodes[i]);
            }
            // Everyone (except entry) must reach the exit.
            for i in 1..n - 1 {
                if seeds[i] % 3 == 0 || i == n - 2 {
                    b.add_edge(nodes[i], nodes[n - 1]);
                }
            }
            // Guarantee at least one edge into exit exists even if the
            // modular condition never fired.
            b.add_edge(nodes[n - 2], nodes[n - 1]);
            // Random extra edges among interior nodes (may create loops,
            // parallel edges, self-loops, irreducible shapes).
            for (a, t) in extra {
                if t < n - 1 || a != t {
                    b.add_edge(nodes[a], nodes[t.min(n - 2).max(1)]);
                }
            }
            let g = b.graph().clone();
            // Repair "cannot reach exit" by linking dead ends forward.
            let mut b2 = CfgBuilder::new();
            let nodes2 = b2.add_nodes(n);
            for e in g.edges() {
                b2.add_edge(g.source(e), g.target(e));
            }
            let back = g.reversed().reachable_from(nodes2[n - 1]);
            for i in 1..n - 1 {
                if !back[i] {
                    b2.add_edge(nodes2[i], nodes2[n - 1]);
                }
            }
            b2.finish(nodes2[0], nodes2[n - 1])
                .expect("repaired graph is a valid CFG")
        })
}

/// Definitional SESE membership: `entry` dominates `n` and `exit`
/// postdominates `n`, with edge dominance reduced to node dominance on the
/// edge-split graph.
struct MembershipOracle {
    split: EdgeSplit,
    dom: pst_dominators::DomTree,
    pdom: pst_dominators::DomTree,
}

impl MembershipOracle {
    fn new(cfg: &Cfg) -> Self {
        let split = EdgeSplit::of_cfg(cfg);
        let dom = dominator_tree(split.graph(), cfg.entry());
        let pdom = dominator_tree_in(split.graph(), cfg.exit(), Direction::Backward);
        MembershipOracle { split, dom, pdom }
    }

    fn contains(&self, region: pst_core::SeseRegion, n: NodeId) -> bool {
        self.dom.dominates(self.split.midpoint(region.entry), n)
            && self.pdom.dominates(self.split.midpoint(region.exit), n)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// Every reported canonical region satisfies all three conditions of
    /// Definition 3.
    #[test]
    fn regions_satisfy_sese_definition(cfg in random_cfg(12, 14)) {
        let pst = ProgramStructureTree::build(&cfg);
        let oracle = MembershipOracle::new(&cfg);
        let ce = &pst.detection().expect("built tree").cycle_equiv;
        for r in pst.regions().skip(1) {
            let b = pst.bounds(r).unwrap();
            prop_assert!(oracle.dom.dominates(
                oracle.split.midpoint(b.entry),
                oracle.split.midpoint(b.exit)
            ), "entry must dominate exit");
            prop_assert!(oracle.pdom.dominates(
                oracle.split.midpoint(b.exit),
                oracle.split.midpoint(b.entry)
            ), "exit must postdominate entry");
            prop_assert!(ce.same_class(b.entry, b.exit));
        }
    }

    /// PST node membership coincides exactly with Definition 6.
    #[test]
    fn membership_matches_definition(cfg in random_cfg(12, 14)) {
        let pst = ProgramStructureTree::build(&cfg);
        let oracle = MembershipOracle::new(&cfg);
        for node in cfg.graph().nodes() {
            for r in pst.regions().skip(1) {
                let b = pst.bounds(r).unwrap();
                prop_assert_eq!(
                    pst.contains_node(r, node),
                    oracle.contains(b, node),
                    "node {:?} region {:?} ({:?})", node, r, b
                );
            }
        }
    }

    /// The innermost region reported for each node really is the deepest
    /// region containing it.
    #[test]
    fn innermost_region_is_deepest(cfg in random_cfg(12, 14)) {
        let pst = ProgramStructureTree::build(&cfg);
        let oracle = MembershipOracle::new(&cfg);
        for node in cfg.graph().nodes() {
            let mine = pst.region_of_node(node);
            let best = pst
                .regions()
                .skip(1)
                .filter(|&r| oracle.contains(pst.bounds(r).unwrap(), node))
                .max_by_key(|&r| pst.depth(r));
            match best {
                Some(r) => prop_assert_eq!(mine, r),
                None => prop_assert_eq!(mine, pst.root()),
            }
        }
    }

    /// Theorem 1: canonical regions are disjoint or nested — verified on
    /// the membership sets, and the PST parent is the closest container.
    #[test]
    fn regions_nest_per_theorem1(cfg in random_cfg(11, 12)) {
        let pst = ProgramStructureTree::build(&cfg);
        let oracle = MembershipOracle::new(&cfg);
        let nodesets: Vec<Vec<bool>> = pst
            .regions()
            .map(|r| match pst.bounds(r) {
                Some(b) => cfg.graph().nodes().map(|n| oracle.contains(b, n)).collect(),
                None => vec![true; cfg.node_count()],
            })
            .collect();
        for i in 1..nodesets.len() {
            for j in (i + 1)..nodesets.len() {
                let a = &nodesets[i];
                let b = &nodesets[j];
                let inter = a.iter().zip(b).filter(|(x, y)| **x && **y).count();
                let asz = a.iter().filter(|x| **x).count();
                let bsz = b.iter().filter(|x| **x).count();
                if inter > 0 {
                    prop_assert!(
                        inter == asz || inter == bsz,
                        "regions {} and {} partially overlap", i, j
                    );
                }
            }
        }
        // Parent containment on the tree matches set containment.
        for r in pst.regions().skip(1) {
            let p = pst.parent(r).unwrap();
            let rset = &nodesets[r.index()];
            let pset = &nodesets[p.index()];
            for k in 0..rset.len() {
                if rset[k] {
                    prop_assert!(pset[k], "parent region must contain child nodes");
                }
            }
        }
    }
}
