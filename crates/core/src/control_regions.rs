//! Control regions in linear time (paper §5).
//!
//! Two nodes are in the same *control region* when they have the same set
//! of control dependences. Theorem 7 reduces this to **node** cycle
//! equivalence in `S = G + (end→start)`, and Theorem 8 reduces node cycle
//! equivalence to **edge** cycle equivalence of *representative edges* in
//! the node-expanded graph `T(S)`: every node `n` becomes a pair
//! `nᵢ → nₒ` joined by its representative edge, and every original edge
//! `n → m` becomes `nₒ → mᵢ`.
//!
//! The expansion is explicit here (the paper notes an implicit variant as a
//! constant-factor optimization); it doubles the node count and adds `N`
//! edges, preserving the `O(E)` bound. Previous algorithms for this problem
//! were `O(EN)` (Cytron–Ferrante–Sarkar) or restricted to reducible graphs
//! (Ball) — both are implemented in `pst-controldep` as baselines, and the
//! three are cross-validated in the integration tests.

use pst_cfg::{Cfg, EdgeId, Graph, NodeId};

use crate::CycleEquiv;

/// Partition of a CFG's nodes into control regions (control-dependence
/// equivalence classes).
///
/// Class ids are dense and renumbered in node-id order.
///
/// # Examples
///
/// In a diamond, the two arms are separate control regions while entry and
/// exit share one (both execute unconditionally):
///
/// ```
/// use pst_cfg::{parse_edge_list, NodeId};
/// use pst_core::ControlRegions;
/// let cfg = parse_edge_list("0->1 0->2 1->3 2->3").unwrap();
/// let cr = ControlRegions::compute(&cfg);
/// let n = |i| NodeId::from_index(i);
/// assert_eq!(cr.class(n(0)), cr.class(n(3)));
/// assert_ne!(cr.class(n(1)), cr.class(n(2)));
/// assert_eq!(cr.num_classes(), 3);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ControlRegions {
    class_of: Vec<u32>,
    num_classes: u32,
}

impl ControlRegions {
    /// Computes control regions of `cfg` in `O(E)` time via node-expanded
    /// cycle equivalence.
    pub fn compute(cfg: &Cfg) -> Self {
        let _span = pst_obs::Span::enter("control_regions");
        let (s, _back) = cfg.to_strongly_connected();
        let (t, representative) = node_expand(&s);
        // T is the node expansion of the strongly connected closure of a
        // valid CFG, so it is connected by construction.
        let ce = CycleEquiv::compute_unchecked(&t, input_half(cfg.entry()));
        let raw: Vec<u32> = cfg
            .graph()
            .nodes()
            .map(|n| ce.class(representative[n.index()]))
            .collect();
        Self::renumber(raw)
    }

    fn renumber(raw: Vec<u32>) -> Self {
        let mut map = std::collections::HashMap::new();
        let mut class_of = Vec::with_capacity(raw.len());
        let mut next = 0u32;
        for label in raw {
            let dense = *map.entry(label).or_insert_with(|| {
                let c = next;
                next += 1;
                c
            });
            class_of.push(dense);
        }
        ControlRegions {
            class_of,
            num_classes: next,
        }
    }

    /// Builds directly from raw per-node labels (used by the baseline
    /// algorithms in `pst-controldep` so results compare with `==`).
    pub fn from_classes(raw: Vec<u32>) -> Self {
        Self::renumber(raw)
    }

    /// Control-region class of `node`.
    pub fn class(&self, node: NodeId) -> u32 {
        self.class_of[node.index()]
    }

    /// Number of distinct control regions.
    pub fn num_classes(&self) -> usize {
        self.num_classes as usize
    }

    /// Whether two nodes share all their control dependences.
    pub fn same_region(&self, a: NodeId, b: NodeId) -> bool {
        self.class(a) == self.class(b)
    }

    /// The classes as a slice indexed by node.
    pub fn classes(&self) -> &[u32] {
        &self.class_of
    }

    /// Groups node ids by class.
    pub fn groups(&self) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.num_classes()];
        for (i, &c) in self.class_of.iter().enumerate() {
            out[c as usize].push(NodeId::from_index(i));
        }
        out
    }
}

/// The input half `nᵢ` of node `n` in the expanded graph.
fn input_half(n: NodeId) -> NodeId {
    NodeId::from_index(2 * n.index())
}

/// The node-expanding transformation `T` of Definition 9.
///
/// Returns the expanded graph and, per original node, the id of its
/// representative edge. Expanded node `2n` is `nᵢ`, `2n + 1` is `nₒ`;
/// representative edges are created first so their ids equal the original
/// node ids.
pub fn node_expand(graph: &Graph) -> (Graph, Vec<EdgeId>) {
    let n = graph.node_count();
    let mut t = Graph::with_capacity(2 * n, n + graph.edge_count());
    t.add_nodes(2 * n);
    let mut representative = Vec::with_capacity(n);
    for node in graph.nodes() {
        let ni = NodeId::from_index(2 * node.index());
        let no = NodeId::from_index(2 * node.index() + 1);
        representative.push(t.add_edge(ni, no));
    }
    for e in graph.edges() {
        let (u, v) = graph.endpoints(e);
        t.add_edge(
            NodeId::from_index(2 * u.index() + 1),
            NodeId::from_index(2 * v.index()),
        );
    }
    (t, representative)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pst_cfg::parse_edge_list;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    fn classes(desc: &str) -> ControlRegions {
        ControlRegions::compute(&parse_edge_list(desc).unwrap())
    }

    #[test]
    fn straight_line_is_one_region() {
        let cr = classes("0->1 1->2 2->3");
        assert_eq!(cr.num_classes(), 1);
    }

    #[test]
    fn diamond_three_regions() {
        let cr = classes("0->1 0->2 1->3 2->3");
        assert_eq!(cr.num_classes(), 3);
        assert!(cr.same_region(n(0), n(3)));
        assert!(!cr.same_region(n(1), n(2)));
        assert!(!cr.same_region(n(0), n(1)));
    }

    #[test]
    fn if_then_two_regions() {
        let cr = classes("0->1 0->2 1->2");
        assert_eq!(cr.num_classes(), 2);
        assert!(cr.same_region(n(0), n(2)));
        assert!(!cr.same_region(n(0), n(1)));
    }

    #[test]
    fn while_loop_three_regions() {
        // Header is conditionally re-executed, body more so, entry/exit
        // unconditional.
        let cr = classes("0->1 1->2 2->1 1->3");
        assert_eq!(cr.num_classes(), 3);
        assert!(cr.same_region(n(0), n(3)));
        assert!(!cr.same_region(n(1), n(2)));
        assert!(!cr.same_region(n(0), n(1)));
    }

    #[test]
    fn same_branch_nodes_share_region() {
        // Two nodes in sequence on the same branch arm.
        let cr = classes("0->1 1->2 0->3 2->3");
        assert!(cr.same_region(n(1), n(2)));
        assert!(cr.same_region(n(0), n(3)));
        assert_eq!(cr.num_classes(), 2);
    }

    #[test]
    fn nested_conditionals() {
        // if (a) { if (b) {x} } : x deeper than the outer arm.
        let cr = classes("0->1 0->4 1->2 1->3 2->3 3->4");
        // 0 and 4 unconditional; 1 and 3 in the outer arm; 2 innermost.
        assert!(cr.same_region(n(0), n(4)));
        assert!(cr.same_region(n(1), n(3)));
        assert!(!cr.same_region(n(1), n(2)));
        assert_eq!(cr.num_classes(), 3);
    }

    #[test]
    fn irreducible_graph_is_handled() {
        let cr = classes("0->1 0->2 1->2 2->1 1->3 2->3");
        // No restriction to reducible graphs (unlike Ball's algorithm).
        assert!(cr.same_region(n(0), n(3)));
        assert!(!cr.same_region(n(1), n(2)));
    }

    #[test]
    fn node_expand_shape() {
        let cfg = parse_edge_list("0->1 1->2").unwrap();
        let (t, rep) = node_expand(cfg.graph());
        assert_eq!(t.node_count(), 6);
        assert_eq!(t.edge_count(), 3 + 2);
        for node in cfg.graph().nodes() {
            let e = rep[node.index()];
            assert_eq!(t.source(e).index(), 2 * node.index());
            assert_eq!(t.target(e).index(), 2 * node.index() + 1);
        }
    }

    #[test]
    fn self_loop_node_is_its_own_region() {
        let cr = classes("0->1 1->1 1->2");
        assert!(cr.same_region(n(0), n(2)));
        assert!(!cr.same_region(n(0), n(1)));
        assert_eq!(cr.num_classes(), 2);
    }
}
