//! Canonical single-entry single-exit regions (paper §2.1, §3.6).
//!
//! A SESE region is an ordered edge pair `(a, b)` with `a dom b`,
//! `b pdom a`, and `a`, `b` cycle equivalent (Definition 3). By Theorem 2
//! this triple condition collapses to cycle equivalence in
//! `S = G + (end→start)`, so canonical regions fall out of the
//! cycle-equivalence classes: the edges of one class are totally ordered by
//! dominance, any directed DFS of `G` meets them in that order, and each
//! adjacent pair bounds a canonical region (Definition 5).

use pst_cfg::{Cfg, Dfs, EdgeId};

use crate::CycleEquiv;

/// One canonical SESE region, identified by its entry and exit edges.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SeseRegion {
    /// The region's entry edge (`a` of the pair): dominates every node in
    /// the region.
    pub entry: EdgeId,
    /// The region's exit edge (`b` of the pair): postdominates every node
    /// in the region.
    pub exit: EdgeId,
}

/// The result of SESE-region detection on a CFG.
#[derive(Clone, Debug)]
pub struct CanonicalRegions {
    /// Cycle-equivalence classes of the edges of `S = G + (end→start)`.
    /// Edge ids `0..G.edge_count()` are the CFG edges; the virtual backedge
    /// has id `G.edge_count()`.
    pub cycle_equiv: CycleEquiv,
    /// Canonical regions in DFS-discovery order of their entry edges.
    pub regions: Vec<SeseRegion>,
    /// For every cycle-equivalence class, the CFG edges of that class in
    /// dominance order (the virtual backedge is excluded).
    pub ordered_classes: Vec<Vec<EdgeId>>,
}

/// Finds all canonical SESE regions of `cfg` in `O(E)` time.
///
/// # Examples
///
/// A while loop produces two nested canonical regions — the loop body and
/// the region around the whole loop:
///
/// ```
/// use pst_cfg::parse_edge_list;
/// use pst_core::canonical_regions;
/// let cfg = parse_edge_list("0->1 1->2 2->1 1->3").unwrap();
/// let found = canonical_regions(&cfg);
/// assert_eq!(found.regions.len(), 2);
/// ```
pub fn canonical_regions(cfg: &Cfg) -> CanonicalRegions {
    let _span = pst_obs::Span::enter("sese");
    let (s, _virtual_edge) = cfg.to_strongly_connected();
    // The closure S of a valid CFG is strongly connected (Theorem 2), so
    // the connectivity precondition holds by construction.
    let cycle_equiv = CycleEquiv::compute_unchecked(&s, cfg.entry());

    // Directed DFS of G meets the edges of each class in dominance order.
    let dfs = Dfs::new(cfg.graph(), cfg.entry());
    let mut ordered_classes: Vec<Vec<EdgeId>> = vec![Vec::new(); cycle_equiv.num_classes()];
    let mut pos_in_class: Vec<u32> = vec![0; cfg.edge_count()];
    for &e in dfs.edges_in_examination_order() {
        let class = &mut ordered_classes[cycle_equiv.class(e) as usize];
        pos_in_class[e.index()] = class.len() as u32;
        class.push(e);
    }

    // Regions are emitted at their entry edge so the output order is the
    // DFS-discovery order of region entries.
    let mut regions = Vec::new();
    for &e in dfs.edges_in_examination_order() {
        let class = &ordered_classes[cycle_equiv.class(e) as usize];
        let pos = pos_in_class[e.index()] as usize;
        if pos + 1 < class.len() {
            regions.push(SeseRegion {
                entry: e,
                exit: class[pos + 1],
            });
        }
    }
    CanonicalRegions {
        cycle_equiv,
        regions,
        ordered_classes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pst_cfg::{parse_edge_list, EdgeSplit, Graph, NodeId};
    use pst_dominators::{dominator_tree, dominator_tree_in, Direction, DomTree};

    /// Definitional check of the three SESE conditions via the edge-split
    /// dominator oracle, plus canonicity.
    fn assert_valid_sese(desc: &str) {
        let cfg = parse_edge_list(desc).unwrap();
        let found = canonical_regions(&cfg);
        let split = EdgeSplit::of_cfg(&cfg);
        let dom = dominator_tree(split.graph(), cfg.entry());
        let pdom = dominator_tree_in(split.graph(), cfg.exit(), Direction::Backward);
        let edge_dom = |a: EdgeId, b: EdgeId| dom.dominates(split.midpoint(a), split.midpoint(b));
        let edge_pdom = |a: EdgeId, b: EdgeId| pdom.dominates(split.midpoint(a), split.midpoint(b));

        for r in &found.regions {
            assert!(
                edge_dom(r.entry, r.exit),
                "{desc}: entry must dominate exit"
            );
            assert!(
                edge_pdom(r.exit, r.entry),
                "{desc}: exit must postdominate entry"
            );
            assert!(
                found.cycle_equiv.same_class(r.entry, r.exit),
                "{desc}: boundary edges must be cycle equivalent"
            );
        }
        // Canonicity: within a class ordered by dominance, regions pair
        // adjacent edges only.
        for class in &found.ordered_classes {
            for w in class.windows(2) {
                assert!(
                    edge_dom(w[0], w[1]),
                    "{desc}: class must be dominance-ordered"
                );
                assert!(edge_pdom(w[1], w[0]), "{desc}: class must be pdom-ordered");
            }
        }
        // Completeness: every adjacent pair is reported exactly once.
        let expected: usize = found
            .ordered_classes
            .iter()
            .map(|c| c.len().saturating_sub(1))
            .sum();
        assert_eq!(found.regions.len(), expected, "{desc}");
    }

    #[test]
    fn straight_line_regions() {
        let cfg = parse_edge_list("0->1 1->2 2->3").unwrap();
        let found = canonical_regions(&cfg);
        // Edges 01,12,23 are one class: two canonical regions (01,12), (12,23).
        assert_eq!(found.regions.len(), 2);
        assert_valid_sese("0->1 1->2 2->3");
    }

    #[test]
    fn diamond_regions() {
        assert_valid_sese("0->1 0->2 1->3 2->3");
        let cfg = parse_edge_list("0->1 0->2 1->3 2->3").unwrap();
        let found = canonical_regions(&cfg);
        // Each arm is a canonical region.
        assert_eq!(found.regions.len(), 2);
    }

    #[test]
    fn loops_and_nests() {
        assert_valid_sese("0->1 1->2 2->1 1->3");
        assert_valid_sese("0->1 1->2 2->1 2->3");
        assert_valid_sese("0->1 1->2 2->3 3->2 3->1 1->4");
    }

    #[test]
    fn irreducible_graphs_still_work() {
        assert_valid_sese("0->1 0->2 1->2 2->1 1->3 2->3");
        assert_valid_sese("0->1 0->3 1->2 2->3 3->4 4->1 2->5 4->5");
    }

    #[test]
    fn unstructured_overlapping_loops() {
        assert_valid_sese("0->1 1->2 2->3 3->4 4->5 3->1 5->2 5->6");
    }

    #[test]
    fn self_loops_and_parallel_edges() {
        assert_valid_sese("0->1 1->1 1->2");
        assert_valid_sese("0->1 0->1 1->2");
    }

    #[test]
    fn figure1_like_graph() {
        assert_valid_sese(
            "0->1 1->2 2->3 2->4 3->5 4->5 5->6 6->7 7->6 6->8 8->9 8->10 9->11 10->11 11->8 8->12 12->13",
        );
    }

    #[test]
    fn region_entries_in_dfs_order() {
        let cfg = parse_edge_list("0->1 1->2 2->3").unwrap();
        let found = canonical_regions(&cfg);
        // Entry edges appear in discovery order.
        let entries: Vec<usize> = found.regions.iter().map(|r| r.entry.index()).collect();
        let mut sorted = entries.clone();
        sorted.sort_unstable();
        assert_eq!(entries, sorted);
    }

    /// Exhaustive membership oracle on a non-trivial graph: for every
    /// reported region, the membership predicate (entry dom n && exit pdom
    /// n) must hold for at least the nodes strictly "between" the edges.
    #[test]
    fn membership_oracle_consistency() {
        let cfg = parse_edge_list("0->1 1->2 2->1 1->3").unwrap();
        let found = canonical_regions(&cfg);
        let split = EdgeSplit::of_cfg(&cfg);
        let dom = dominator_tree(split.graph(), cfg.entry());
        let pdom = dominator_tree_in(split.graph(), cfg.exit(), Direction::Backward);
        let contains = |r: &SeseRegion, n: NodeId, dom: &DomTree, pdom: &DomTree| {
            dom.dominates(split.midpoint(r.entry), n) && pdom.dominates(split.midpoint(r.exit), n)
        };
        // The loop region (1->2, 2->1) contains node 2.
        let g: &Graph = cfg.graph();
        let loop_region = found
            .regions
            .iter()
            .find(|r| g.target(r.entry).index() == 2)
            .expect("loop body region");
        assert!(contains(loop_region, NodeId::from_index(2), &dom, &pdom));
        assert!(!contains(loop_region, NodeId::from_index(3), &dom, &pdom));
    }
}
