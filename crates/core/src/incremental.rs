//! Incremental PST maintenance under edge insertion (paper §6.3).
//!
//! "Such an approach might lead to fast incremental algorithms for
//! analysis problems since the PST can be used to isolate regions of the
//! graph where information must be recomputed."
//!
//! Inserting an edge `u → v` can only *refine* cycle-equivalence classes
//! (more cycles make equivalence harder), and the new cycles it creates
//! stay confined: let `R₀` be the innermost region containing both `u` and
//! `v`. Then
//!
//! * every region that is **not** a strict descendant of `R₀` keeps its
//!   boundary pair, its canonicality and its membership (any new cycle
//!   that leaves `R₀` crosses each enclosing boundary through both of its
//!   edges, and the outside trace of any new path is the outside trace of
//!   an old path);
//! * the class of an edge interior to a canonical region never contains
//!   edges outside it (otherwise Theorem 1 would give a partial overlap),
//!   so no region with one boundary inside `R₀` and one outside can exist
//!   before or after the change.
//!
//! Hence only `R₀`'s strict subtree needs recomputation: we rebuild the
//! PST of `R₀`'s interior sub-CFG (entry/exit edges replaced by synthetic
//! boundary nodes) and splice it back. The property tests check the splice
//! against a from-scratch rebuild on random CFGs and insertions.

use std::collections::HashMap;

use pst_cfg::{Cfg, CfgBuilder, EdgeId, NodeId, ValidateCfgError};

use crate::pst::rebuild_from_parts;
use crate::{ProgramStructureTree, RegionId, SeseRegion};

/// Result of an incremental edge insertion.
#[derive(Clone, Debug)]
pub struct EdgeInsertion {
    /// The CFG with the edge added (node ids unchanged; old edge ids
    /// unchanged; the new edge has id `old_edge_count`).
    pub cfg: Cfg,
    /// The id of the inserted edge.
    pub new_edge: EdgeId,
    /// The updated program structure tree.
    pub pst: ProgramStructureTree,
    /// How many CFG nodes were inside the recomputed region (the full node
    /// count when the change touched the root region) — the incremental
    /// win is `rebuilt_nodes / cfg.node_count()`.
    pub rebuilt_nodes: usize,
}

/// Why an edge cannot be inserted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InsertEdgeError {
    /// The source is the CFG exit (which must have no successors).
    SourceIsExit,
    /// The target is the CFG entry (which must have no predecessors).
    TargetIsEntry,
    /// The grown graph failed CFG validation (cannot happen for in-range
    /// nodes; kept for robustness).
    Validate(ValidateCfgError),
}

impl std::fmt::Display for InsertEdgeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InsertEdgeError::SourceIsExit => write!(f, "cannot add an edge out of the exit"),
            InsertEdgeError::TargetIsEntry => write!(f, "cannot add an edge into the entry"),
            InsertEdgeError::Validate(e) => write!(f, "grown graph is invalid: {e}"),
        }
    }
}

impl std::error::Error for InsertEdgeError {}

/// Inserts `u → v` into `cfg` and updates `pst` by recomputing only the
/// innermost region containing both endpoints.
///
/// # Errors
///
/// Returns [`InsertEdgeError`] if the edge would violate the entry/exit
/// degree invariants.
///
/// # Examples
///
/// ```
/// use pst_cfg::{parse_edge_list, NodeId};
/// use pst_core::{insert_edge, ProgramStructureTree};
/// // Straight line; add a backedge 2 -> 1 to create a loop.
/// let cfg = parse_edge_list("0->1 1->2 2->3").unwrap();
/// let pst = ProgramStructureTree::build(&cfg);
/// let grown = insert_edge(&cfg, &pst, NodeId::from_index(2), NodeId::from_index(1)).unwrap();
/// assert_eq!(grown.cfg.edge_count(), 4);
/// // The spliced tree matches a from-scratch rebuild.
/// let fresh = ProgramStructureTree::build(&grown.cfg);
/// assert_eq!(grown.pst.signature(), fresh.signature());
/// ```
pub fn insert_edge(
    cfg: &Cfg,
    pst: &ProgramStructureTree,
    u: NodeId,
    v: NodeId,
) -> Result<EdgeInsertion, InsertEdgeError> {
    if u == cfg.exit() {
        return Err(InsertEdgeError::SourceIsExit);
    }
    if v == cfg.entry() {
        return Err(InsertEdgeError::TargetIsEntry);
    }
    let mut graph = cfg.graph().clone();
    let new_edge = graph.add_edge(u, v);
    let grown =
        Cfg::from_graph(graph, cfg.entry(), cfg.exit()).map_err(InsertEdgeError::Validate)?;

    // Innermost region containing both endpoints (tree LCA).
    let r0 = region_lca(pst, pst.region_of_node(u), pst.region_of_node(v));

    if r0 == pst.root() {
        let pst = ProgramStructureTree::build(&grown);
        let rebuilt_nodes = grown.node_count();
        return Ok(EdgeInsertion {
            cfg: grown,
            new_edge,
            pst,
            rebuilt_nodes,
        });
    }

    // ---- Local rebuild of R0's interior. -------------------------------
    let bounds = pst.bounds(r0).expect("non-root region");
    let inside: Vec<NodeId> = grown
        .graph()
        .nodes()
        .filter(|&n| pst.contains_node(r0, n))
        .collect();
    let rebuilt_nodes = inside.len();

    // Sub-CFG: synthetic entry/exit stand in for the boundary edges.
    let mut b = CfgBuilder::with_capacity(inside.len() + 2, inside.len() * 2);
    let sub_entry = b.add_node();
    let mut to_local: HashMap<NodeId, NodeId> = HashMap::new();
    for &n in &inside {
        to_local.insert(n, b.add_node());
    }
    let sub_exit = b.add_node();
    // local edge index -> real edge id (synthetic boundary edges map to
    // the region's own entry/exit edges).
    let mut to_real_edge: Vec<EdgeId> = Vec::new();
    let head = grown.graph().target(bounds.entry);
    let tail = grown.graph().source(bounds.exit);
    b.add_edge(sub_entry, to_local[&head]);
    to_real_edge.push(bounds.entry);
    for e in grown.graph().edges() {
        if e == bounds.entry || e == bounds.exit {
            continue;
        }
        let (s, t) = grown.graph().endpoints(e);
        if let (Some(&ls), Some(&lt)) = (to_local.get(&s), to_local.get(&t)) {
            b.add_edge(ls, lt);
            to_real_edge.push(e);
        }
    }
    b.add_edge(to_local[&tail], sub_exit);
    to_real_edge.push(bounds.exit);
    let sub_cfg = b
        .finish(sub_entry, sub_exit)
        .expect("region interior forms a valid sub-CFG");
    let sub_pst = ProgramStructureTree::build(&sub_cfg);

    // The sub-region bounded by the two synthetic edges IS R0; it always
    // exists because the boundary edges stay cycle equivalent and
    // adjacent.
    let syn_entry_edge = EdgeId::from_index(0);
    let sub_r0 = sub_pst
        .regions()
        .skip(1)
        .find(|&r| {
            let b = sub_pst.bounds(r).expect("canonical");
            b.entry == syn_entry_edge
        })
        .expect("synthetic boundary pair forms a region");

    // ---- Splice. --------------------------------------------------------
    // Keep: every old region that is not a strict descendant of R0.
    // Add: every sub-region strictly inside sub_r0, with edges remapped.
    let local_nodes: Vec<NodeId> = inside.clone();
    let mut kept: Vec<RegionId> = pst
        .regions()
        .filter(|&r| r == r0 || !pst.region_contains(r0, r))
        .collect();
    kept.sort_unstable();
    let mut new_id_of_old: HashMap<RegionId, usize> = HashMap::new();
    for (i, &r) in kept.iter().enumerate() {
        new_id_of_old.insert(r, i);
    }
    let spliced: Vec<RegionId> = sub_pst
        .regions()
        .filter(|&r| r != sub_pst.root() && r != sub_r0 && sub_pst.region_contains(sub_r0, r))
        .collect();
    let mut new_id_of_sub: HashMap<RegionId, usize> = HashMap::new();
    for (i, &r) in spliced.iter().enumerate() {
        new_id_of_sub.insert(r, kept.len() + i);
    }

    // Region records: (bounds, parent) in new-id space.
    let mut records: Vec<(Option<SeseRegion>, Option<usize>)> = Vec::new();
    for &r in &kept {
        let parent = pst.parent(r).map(|p| new_id_of_old[&p]);
        records.push((pst.bounds(r), parent));
    }
    for &r in &spliced {
        let b = sub_pst.bounds(r).expect("canonical");
        let real = SeseRegion {
            entry: to_real_edge[b.entry.index()],
            exit: to_real_edge[b.exit.index()],
        };
        let parent_sub = sub_pst.parent(r).expect("non-root");
        let parent = if parent_sub == sub_r0 {
            new_id_of_old[&r0]
        } else {
            new_id_of_sub[&parent_sub]
        };
        records.push((Some(real), Some(parent)));
    }

    // Node membership.
    let mut node_region: Vec<usize> = (0..grown.node_count())
        .map(|i| {
            let n = NodeId::from_index(i);
            let old = pst.region_of_node(n);
            if pst.region_contains(r0, old) {
                usize::MAX // filled from the sub tree below
            } else {
                new_id_of_old[&old]
            }
        })
        .collect();
    for &real in &local_nodes {
        let local = to_local[&real];
        let sub_region = sub_pst.region_of_node(local);
        node_region[real.index()] =
            map_sub_region(sub_region, sub_r0, &new_id_of_old[&r0], &new_id_of_sub);
    }
    node_region[grown.entry().index()] = new_id_of_old[&pst.region_of_node(grown.entry())];
    debug_assert!(node_region.iter().all(|&r| r != usize::MAX));

    // Edge membership.
    let mut edge_region: Vec<usize> = vec![usize::MAX; grown.edge_count()];
    for e in cfg.graph().edges() {
        let old = pst.region_of_edge(e);
        if !pst.region_contains(r0, old) || old == r0 {
            edge_region[e.index()] = new_id_of_old[&old];
        }
    }
    for (local_idx, &real) in to_real_edge.iter().enumerate() {
        let local_edge = EdgeId::from_index(local_idx);
        let sub_region = sub_pst.region_of_edge(local_edge);
        let mapped = map_sub_region(sub_region, sub_r0, &new_id_of_old[&r0], &new_id_of_sub);
        // Boundary edges keep their old (kept) assignment: the sub view
        // assigns them relative to sub_r0, which coincides with R0 anyway
        // for the entry and with R0's parent handling for the exit.
        if real == bounds.entry || real == bounds.exit {
            continue;
        }
        edge_region[real.index()] = mapped;
    }
    // Boundary edges: entry belongs to R0, exit to R0's parent — exactly
    // their old assignments.
    edge_region[bounds.entry.index()] = new_id_of_old[&pst.region_of_edge(bounds.entry)];
    edge_region[bounds.exit.index()] = new_id_of_old[&pst.region_of_edge(bounds.exit)];
    debug_assert!(edge_region.iter().all(|&r| r != usize::MAX));

    let pst = rebuild_from_parts(records, node_region, edge_region);
    Ok(EdgeInsertion {
        cfg: grown,
        new_edge,
        pst,
        rebuilt_nodes,
    })
}

fn map_sub_region(
    sub: RegionId,
    sub_r0: RegionId,
    r0_new: &usize,
    new_id_of_sub: &HashMap<RegionId, usize>,
) -> usize {
    if sub == sub_r0 || sub.index() == 0 {
        *r0_new
    } else {
        new_id_of_sub[&sub]
    }
}

/// Lowest common ancestor of two regions in the PST.
fn region_lca(pst: &ProgramStructureTree, a: RegionId, b: RegionId) -> RegionId {
    let (mut x, mut y) = (a, b);
    while pst.depth(x) > pst.depth(y) {
        x = pst.parent(x).expect("non-root has parent");
    }
    while pst.depth(y) > pst.depth(x) {
        y = pst.parent(y).expect("non-root has parent");
    }
    while x != y {
        x = pst.parent(x).expect("non-root has parent");
        y = pst.parent(y).expect("non-root has parent");
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use pst_cfg::parse_edge_list;

    fn check_insert(desc: &str, u: usize, v: usize) -> EdgeInsertion {
        let cfg = parse_edge_list(desc).unwrap();
        let pst = ProgramStructureTree::build(&cfg);
        let grown = insert_edge(&cfg, &pst, NodeId::from_index(u), NodeId::from_index(v))
            .unwrap_or_else(|e| panic!("{desc} +{u}->{v}: {e}"));
        let fresh = ProgramStructureTree::build(&grown.cfg);
        assert_eq!(grown.pst.signature(), fresh.signature(), "{desc} +{u}->{v}");
        grown
    }

    #[test]
    fn insert_inside_loop_body_is_local() {
        // Loop with a two-block body; new edge inside the body region.
        let desc = "0->1 1->2 2->3 3->1 1->4";
        let grown = check_insert(desc, 2, 3);
        // Only the loop-internal region gets rebuilt, not the whole graph.
        assert!(grown.rebuilt_nodes < grown.cfg.node_count());
    }

    #[test]
    fn insert_backedge_in_chain_hits_root() {
        let grown = check_insert("0->1 1->2 2->3", 2, 1);
        assert_eq!(grown.rebuilt_nodes, grown.cfg.node_count());
    }

    #[test]
    fn insert_forward_skip_in_diamond() {
        check_insert("0->1 0->2 1->3 2->3 3->4", 1, 3);
        check_insert("0->1 0->2 1->3 2->3 3->4", 0, 3);
    }

    #[test]
    fn insert_parallel_and_self_loop() {
        check_insert("0->1 1->2 2->3", 1, 2); // parallel to an existing edge
        check_insert("0->1 1->2 2->3", 1, 1); // self-loop
        check_insert("0->1 1->2 2->1 1->3", 2, 2); // self-loop inside a loop
    }

    #[test]
    fn insert_cross_region_edge_destroys_siblings() {
        // Sequential conditionals; an edge from inside the first into the
        // second forces both (and their parent chain region) to rebuild.
        let desc = "0->1 1->2 1->3 2->4 3->4 4->5 5->6 5->7 6->8 7->8 8->9";
        check_insert(desc, 2, 7);
    }

    #[test]
    fn insert_into_nested_loop_keeps_outer_structure() {
        let desc = "0->1 1->2 2->3 3->2 3->1 1->4";
        let cfg = parse_edge_list(desc).unwrap();
        let pst = ProgramStructureTree::build(&cfg);
        let grown = insert_edge(&cfg, &pst, NodeId::from_index(2), NodeId::from_index(2)).unwrap();
        let fresh = ProgramStructureTree::build(&grown.cfg);
        assert_eq!(grown.pst.signature(), fresh.signature());
        assert!(grown.rebuilt_nodes <= 2, "self-loop is maximally local");
    }

    #[test]
    fn rejects_degree_violations() {
        let cfg = parse_edge_list("0->1 1->2").unwrap();
        let pst = ProgramStructureTree::build(&cfg);
        assert_eq!(
            insert_edge(&cfg, &pst, cfg.exit(), NodeId::from_index(1)).unwrap_err(),
            InsertEdgeError::SourceIsExit
        );
        assert_eq!(
            insert_edge(&cfg, &pst, NodeId::from_index(1), cfg.entry()).unwrap_err(),
            InsertEdgeError::TargetIsEntry
        );
    }

    #[test]
    fn repeated_insertions_compose() {
        let mut cfg = parse_edge_list("0->1 1->2 2->3 3->4 4->5").unwrap();
        let mut pst = ProgramStructureTree::build(&cfg);
        for (u, v) in [(2, 1), (3, 2), (4, 1)] {
            let grown =
                insert_edge(&cfg, &pst, NodeId::from_index(u), NodeId::from_index(v)).unwrap();
            cfg = grown.cfg;
            pst = grown.pst;
            let fresh = ProgramStructureTree::build(&cfg);
            assert_eq!(pst.signature(), fresh.signature(), "after +{u}->{v}");
        }
    }
}
