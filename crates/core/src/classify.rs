//! Region-kind classification (paper §4, Figure 7).
//!
//! The paper runs "a simple pattern-matching pass" over each SESE region to
//! identify it as a basic block, a case construct, a loop, a dag, or a
//! cyclic unstructured region. We classify the *collapsed* graph of each
//! region — interior nodes plus immediately nested regions contracted to
//! single statements — which is also the granularity the paper's
//! region-size and φ-placement arguments use.

use pst_cfg::{is_reducible, Cfg, Graph, NodeId};

use crate::{ProgramStructureTree, RegionId};

/// Structural kind of one SESE region.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RegionKind {
    /// Straight-line code: a single statement or a chain.
    Block,
    /// Two-way conditional (including one-armed `if-then`).
    IfThenElse,
    /// `k ≥ 3`-way conditional.
    Case,
    /// Cyclic but reducible: a natural loop (possibly with extra structure
    /// that still reduces).
    Loop,
    /// Acyclic but not a chain or simple conditional.
    Dag,
    /// Cyclic and irreducible.
    Unstructured,
}

impl RegionKind {
    /// Whether this kind corresponds to structured source-level control
    /// flow (used for the paper's "completely structured procedures"
    /// count).
    pub fn is_structured(self) -> bool {
        !matches!(self, RegionKind::Dag | RegionKind::Unstructured)
    }
}

impl std::fmt::Display for RegionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RegionKind::Block => "block",
            RegionKind::IfThenElse => "if-then-else",
            RegionKind::Case => "case",
            RegionKind::Loop => "loop",
            RegionKind::Dag => "dag",
            RegionKind::Unstructured => "unstructured",
        };
        f.write_str(s)
    }
}

/// Classification of every region of a PST (indexed by [`RegionId`]).
#[derive(Clone, Debug)]
pub struct RegionClassification {
    kinds: Vec<RegionKind>,
    weights: Vec<usize>,
}

impl RegionClassification {
    /// Kind of `region`.
    pub fn kind(&self, region: RegionId) -> RegionKind {
        self.kinds[region.index()]
    }

    /// The paper's Figure-7 weight of `region`: the number of immediately
    /// nested maximal regions, with blocks counting one.
    pub fn weight(&self, region: RegionId) -> usize {
        self.weights[region.index()]
    }

    /// All kinds, indexed by region.
    pub fn kinds(&self) -> &[RegionKind] {
        &self.kinds
    }

    /// Whether every region of the procedure is structured.
    pub fn is_completely_structured(&self) -> bool {
        self.kinds.iter().all(|k| k.is_structured())
    }

    /// Weighted share of each kind, as `(kind, weight_sum)` pairs in a
    /// fixed order (Figure 7's data).
    pub fn weighted_counts(&self) -> Vec<(RegionKind, usize)> {
        use RegionKind::*;
        [Block, IfThenElse, Case, Loop, Dag, Unstructured]
            .into_iter()
            .map(|kind| {
                let w = self
                    .kinds
                    .iter()
                    .zip(&self.weights)
                    .filter(|(k, _)| **k == kind)
                    .map(|(_, w)| w)
                    .sum();
                (kind, w)
            })
            .collect()
    }
}

/// Classifies every region of `pst`.
///
/// # Examples
///
/// ```
/// use pst_cfg::parse_edge_list;
/// use pst_core::{classify_regions, ProgramStructureTree, RegionKind};
/// let cfg = parse_edge_list("0->1 1->2 2->1 1->3").unwrap();
/// let pst = ProgramStructureTree::build(&cfg);
/// let classes = classify_regions(&cfg, &pst);
/// let kinds: Vec<RegionKind> = pst.regions().map(|r| classes.kind(r)).collect();
/// assert!(kinds.contains(&RegionKind::Loop));
/// ```
pub fn classify_regions(cfg: &Cfg, pst: &ProgramStructureTree) -> RegionClassification {
    let collapsed = crate::collapse_all(cfg, pst);
    let mut kinds = Vec::with_capacity(pst.region_count());
    let mut weights = Vec::with_capacity(pst.region_count());
    for region in pst.regions() {
        weights.push(pst.children(region).len().max(1));
        let mini = &collapsed[region.index()];
        kinds.push(classify_mini(&mini.graph, mini.head));
    }
    RegionClassification { kinds, weights }
}

/// Pattern-matches the collapsed graph of a region.
///
/// Before matching, maximal chains of sequentially composed statements are
/// contracted to single nodes — the paper groups sequential chains, so a
/// conditional arm consisting of several statements in a row still reads
/// as one arm.
fn classify_mini(mini: &Graph, head: NodeId) -> RegionKind {
    let n = mini.node_count();
    if n == 0 || (n == 1 && mini.edge_count() == 0) {
        return RegionKind::Block;
    }
    if has_cycle(mini) {
        return if is_reducible(mini, head, None) {
            RegionKind::Loop
        } else {
            RegionKind::Unstructured
        };
    }
    let (g, h) = contract_chains(mini, head);
    // Chain all the way through?
    if g.node_count() == 1 {
        return RegionKind::Block;
    }
    // Conditional pattern: head branches to arms that all rejoin at a
    // single tail; arms are single contracted statements (or empty).
    let tails: Vec<NodeId> = g.nodes().filter(|&v| g.out_degree(v) == 0).collect();
    if tails.len() == 1 && g.in_degree(h) == 0 {
        let t = tails[0];
        let arms = g.out_degree(h);
        let middle_ok = g.nodes().filter(|&v| v != h && v != t).all(|v| {
            g.in_degree(v) == 1
                && g.out_degree(v) == 1
                && g.predecessors(v).next() == Some(h)
                && g.successors(v).next() == Some(t)
        });
        if arms >= 2 && middle_ok {
            return if arms == 2 {
                RegionKind::IfThenElse
            } else {
                RegionKind::Case
            };
        }
    }
    RegionKind::Dag
}

/// Contracts every edge `(u, v)` with `out_degree(u) == 1` and
/// `in_degree(v) == 1` (unless that would collapse a cycle), returning the
/// quotient graph and the image of `head`.
fn contract_chains(g: &Graph, head: NodeId) -> (Graph, NodeId) {
    let n = g.node_count();
    // Union-find over nodes.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let mut contracted = vec![false; g.edge_count()];
    for e in g.edges() {
        let (u, v) = g.endpoints(e);
        if u != v && g.out_degree(u) == 1 && g.in_degree(v) == 1 {
            let (ru, rv) = (find(&mut parent, u.index()), find(&mut parent, v.index()));
            if ru != rv {
                parent[ru] = rv;
                contracted[e.index()] = true;
            }
        }
    }
    // Build the quotient.
    let mut dense: Vec<Option<NodeId>> = vec![None; n];
    let mut q = Graph::new();
    for i in 0..n {
        let r = find(&mut parent, i);
        if dense[r].is_none() {
            dense[r] = Some(q.add_node());
        }
    }
    let image = |parent: &mut [usize], dense: &[Option<NodeId>], x: NodeId| {
        dense[find(parent, x.index())].expect("group has a dense id")
    };
    for e in g.edges() {
        if contracted[e.index()] {
            continue;
        }
        let (u, v) = g.endpoints(e);
        let a = image(&mut parent, &dense, u);
        let b = image(&mut parent, &dense, v);
        q.add_edge(a, b);
    }
    let h = image(&mut parent, &dense, head);
    (q, h)
}

fn has_cycle(g: &Graph) -> bool {
    // Kahn's algorithm: cycle iff not all nodes can be peeled.
    let mut indeg: Vec<usize> = g.nodes().map(|v| g.in_degree(v)).collect();
    let mut stack: Vec<NodeId> = g.nodes().filter(|&v| indeg[v.index()] == 0).collect();
    let mut peeled = 0;
    while let Some(v) = stack.pop() {
        peeled += 1;
        for s in g.successors(v) {
            indeg[s.index()] -= 1;
            if indeg[s.index()] == 0 {
                stack.push(s);
            }
        }
    }
    peeled != g.node_count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pst_cfg::parse_edge_list;

    fn kinds_of(desc: &str) -> Vec<RegionKind> {
        let cfg = parse_edge_list(desc).unwrap();
        let pst = ProgramStructureTree::build(&cfg);
        let c = classify_regions(&cfg, &pst);
        pst.regions().map(|r| c.kind(r)).collect()
    }

    #[test]
    fn straight_line_is_blocks() {
        let kinds = kinds_of("0->1 1->2 2->3");
        assert!(kinds.iter().all(|&k| k == RegionKind::Block), "{kinds:?}");
    }

    #[test]
    fn diamond_contains_conditional() {
        let cfg = parse_edge_list("0->1 0->2 1->3 2->3").unwrap();
        let pst = ProgramStructureTree::build(&cfg);
        let c = classify_regions(&cfg, &pst);
        assert_eq!(c.kind(pst.root()), RegionKind::IfThenElse);
        assert!(c.is_completely_structured());
        // Weight of the root = its two arm regions.
        assert_eq!(c.weight(pst.root()), 2);
    }

    #[test]
    fn case_construct() {
        let kinds = kinds_of("0->1 0->2 0->3 1->4 2->4 3->4");
        assert!(kinds.contains(&RegionKind::Case), "{kinds:?}");
    }

    #[test]
    fn while_loop_detected() {
        let cfg = parse_edge_list("0->1 1->2 2->1 1->3").unwrap();
        let pst = ProgramStructureTree::build(&cfg);
        let c = classify_regions(&cfg, &pst);
        let outer = pst.region_of_node(NodeId::from_index(1));
        assert_eq!(c.kind(outer), RegionKind::Loop);
        assert!(c.is_completely_structured());
    }

    #[test]
    fn irreducible_region_is_unstructured() {
        let cfg = parse_edge_list("0->1 0->2 1->2 2->1 1->3 2->3").unwrap();
        let pst = ProgramStructureTree::build(&cfg);
        let c = classify_regions(&cfg, &pst);
        assert!(
            pst.regions().any(|r| c.kind(r) == RegionKind::Unstructured),
            "{:?}",
            c.kinds()
        );
        assert!(!c.is_completely_structured());
    }

    #[test]
    fn dag_region() {
        // Branch whose arms share a node before the join: not a simple
        // conditional.
        let kinds = kinds_of("0->1 0->2 1->2 1->3 2->3 3->4");
        assert!(kinds.contains(&RegionKind::Dag), "{kinds:?}");
    }

    #[test]
    fn weighted_counts_cover_all_regions() {
        let cfg = parse_edge_list("0->1 1->2 2->1 1->3").unwrap();
        let pst = ProgramStructureTree::build(&cfg);
        let c = classify_regions(&cfg, &pst);
        let total: usize = c.weighted_counts().iter().map(|(_, w)| w).sum();
        let expect: usize = pst.regions().map(|r| c.weight(r)).sum();
        assert_eq!(total, expect);
    }

    #[test]
    fn if_then_one_arm() {
        // Entry block, then `if (c) { arm }`, then exit block: the
        // conditional gets its own region classified as a two-way
        // conditional with one empty arm.
        let cfg = parse_edge_list("0->1 1->2 1->3 2->3 3->4").unwrap();
        let pst = ProgramStructureTree::build(&cfg);
        let c = classify_regions(&cfg, &pst);
        assert!(pst.regions().any(|r| c.kind(r) == RegionKind::IfThenElse));
        assert!(c.is_completely_structured());
    }

    #[test]
    fn self_loop_region_is_loop() {
        let cfg = parse_edge_list("0->1 1->1 1->2").unwrap();
        let pst = ProgramStructureTree::build(&cfg);
        let c = classify_regions(&cfg, &pst);
        let r = pst.region_of_node(NodeId::from_index(1));
        assert_eq!(c.kind(r), RegionKind::Loop);
    }
}
