//! Region collapsing: each SESE region as a small CFG of its own.
//!
//! The paper's divide-and-conquer applications (§6) all view a region
//! through the same lens: its *interior* nodes plus its immediately nested
//! regions contracted to single statements. [`collapse_all`] materializes
//! that view for every region of a PST in one pass over the CFG's edges
//! (`O(E · depth)`), and both the region classifier and the PST-based SSA
//! construction consume it.

use std::collections::HashMap;

use pst_cfg::{Cfg, Graph, NodeId};

use crate::{ProgramStructureTree, RegionId};

/// What a node of a collapsed region graph stands for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CollapsedNode {
    /// An interior CFG node of the region.
    Interior(NodeId),
    /// An immediately nested region contracted to one statement.
    Child(RegionId),
}

/// One region's collapsed control flow graph.
///
/// Mini-graph node `i` stands for `members[i]`. `head` is the
/// representative of the region's first node (the target of its entry
/// edge; the CFG entry for the root region); `tail` is the representative
/// of the exit edge's source (the CFG exit for the root).
#[derive(Clone, Debug)]
pub struct CollapsedRegion {
    /// The mini multigraph.
    pub graph: Graph,
    /// Meaning of each mini node.
    pub members: Vec<CollapsedNode>,
    /// Mini node the region is entered at.
    pub head: NodeId,
    /// Mini node the region is left from.
    pub tail: NodeId,
}

impl CollapsedRegion {
    /// Mini node standing for the given CFG node or containing child, if
    /// the node belongs to this region's scope.
    pub fn mini_of(&self, member: CollapsedNode) -> Option<NodeId> {
        self.members
            .iter()
            .position(|&m| m == member)
            .map(NodeId::from_index)
    }
}

/// Collapses every region of `pst` (indexed by [`RegionId`]).
///
/// # Examples
///
/// ```
/// use pst_cfg::parse_edge_list;
/// use pst_core::{collapse_all, ProgramStructureTree};
/// let cfg = parse_edge_list("0->1 1->2 2->1 1->3").unwrap();
/// let pst = ProgramStructureTree::build(&cfg);
/// let collapsed = collapse_all(&cfg, &pst);
/// // Root region: interior nodes 0 and 3, one child (the loop region).
/// let root = &collapsed[pst.root().index()];
/// assert_eq!(root.graph.node_count(), 3);
/// ```
pub fn collapse_all(cfg: &Cfg, pst: &ProgramStructureTree) -> Vec<CollapsedRegion> {
    let graph = cfg.graph();

    // Representative of `node` as seen from `region`.
    let rep_in = |region: RegionId, node: NodeId| -> CollapsedNode {
        if pst.region_of_node(node) == region {
            CollapsedNode::Interior(node)
        } else {
            CollapsedNode::Child(
                pst.child_containing(region, node)
                    .expect("node is inside the region"),
            )
        }
    };

    // Lowest common ancestor of two regions (owner of a crossing edge).
    let lca = |a: RegionId, b: RegionId| -> RegionId {
        let (mut x, mut y) = (a, b);
        while pst.depth(x) > pst.depth(y) {
            x = pst.parent(x).expect("non-root has parent");
        }
        while pst.depth(y) > pst.depth(x) {
            y = pst.parent(y).expect("non-root has parent");
        }
        while x != y {
            x = pst.parent(x).expect("non-root has parent");
            y = pst.parent(y).expect("non-root has parent");
        }
        x
    };

    // Seed every region with its members so mini node ids are stable:
    // interior nodes first (ascending), then children (PST order).
    let mut regions: Vec<(Graph, Vec<CollapsedNode>, HashMap<CollapsedNode, NodeId>)> = pst
        .regions()
        .map(|r| {
            let mut g = Graph::new();
            let mut members = Vec::new();
            let mut index = HashMap::new();
            for n in pst.interior_nodes(r) {
                let m = CollapsedNode::Interior(n);
                index.insert(m, g.add_node());
                members.push(m);
            }
            for &c in pst.children(r) {
                let m = CollapsedNode::Child(c);
                index.insert(m, g.add_node());
                members.push(m);
            }
            (g, members, index)
        })
        .collect();

    // Distribute every CFG edge to its owning region's mini graph.
    for e in graph.edges() {
        let (u, v) = graph.endpoints(e);
        let owner = lca(pst.region_of_node(u), pst.region_of_node(v));
        let ru = rep_in(owner, u);
        let rv = rep_in(owner, v);
        if ru == rv {
            if let CollapsedNode::Child(_) = ru {
                continue; // fully internal to a child; owned deeper (defensive)
            }
        }
        let (g, _, index) = &mut regions[owner.index()];
        let a = index[&ru];
        let b = index[&rv];
        g.add_edge(a, b);
    }

    // Assemble with head/tail.
    pst.regions()
        .zip(regions)
        .map(|(r, (graph_r, members, index))| {
            let head_node = match pst.entry_edge(r) {
                Some(e) => graph.target(e),
                None => cfg.entry(),
            };
            let tail_node = match pst.exit_edge(r) {
                Some(e) => graph.source(e),
                None => cfg.exit(),
            };
            let head = index[&rep_in(r, head_node)];
            let tail = index[&rep_in(r, tail_node)];
            CollapsedRegion {
                graph: graph_r,
                members,
                head,
                tail,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pst_cfg::parse_edge_list;

    #[test]
    fn chain_root_is_a_chain_of_children() {
        let cfg = parse_edge_list("0->1 1->2 2->3").unwrap();
        let pst = ProgramStructureTree::build(&cfg);
        let c = collapse_all(&cfg, &pst);
        let root = &c[pst.root().index()];
        // interior: 0 and 3; children: the two chain regions.
        assert_eq!(root.graph.node_count(), 4);
        assert_eq!(root.graph.edge_count(), 3);
        // head is node 0's rep, tail node 3's rep.
        assert_eq!(
            root.members[root.head.index()],
            CollapsedNode::Interior(cfg.entry())
        );
        assert_eq!(
            root.members[root.tail.index()],
            CollapsedNode::Interior(cfg.exit())
        );
    }

    #[test]
    fn loop_region_collapse() {
        let cfg = parse_edge_list("0->1 1->2 2->1 1->3").unwrap();
        let pst = ProgramStructureTree::build(&cfg);
        let c = collapse_all(&cfg, &pst);
        let outer = pst.region_of_node(NodeId::from_index(1));
        let mini = &c[outer.index()];
        // Interior: header node 1. Child: the body region. Edges: 1->body,
        // body->1 (the backedge).
        assert_eq!(mini.graph.node_count(), 2);
        assert_eq!(mini.graph.edge_count(), 2);
        assert_eq!(mini.head, mini.tail); // entered and left at the header
    }

    #[test]
    fn edge_counts_partition_cfg_edges() {
        let cfg = parse_edge_list(
            "0->1 1->2 2->3 2->4 3->5 4->5 5->6 6->7 7->6 6->8 8->9 8->10 9->11 10->11 11->8 8->12 12->13",
        )
        .unwrap();
        let pst = ProgramStructureTree::build(&cfg);
        let c = collapse_all(&cfg, &pst);
        let total_mini_edges: usize = c.iter().map(|m| m.graph.edge_count()).sum();
        assert_eq!(total_mini_edges, cfg.edge_count());
        let total_mini_nodes: usize = c.iter().map(|m| m.graph.node_count()).sum();
        // Every CFG node appears exactly once as Interior, every region
        // exactly once as Child.
        assert_eq!(
            total_mini_nodes,
            cfg.node_count() + pst.canonical_region_count()
        );
    }

    #[test]
    fn mini_of_finds_members() {
        let cfg = parse_edge_list("0->1 1->2 2->1 1->3").unwrap();
        let pst = ProgramStructureTree::build(&cfg);
        let c = collapse_all(&cfg, &pst);
        let outer = pst.region_of_node(NodeId::from_index(1));
        let mini = &c[outer.index()];
        assert!(mini
            .mini_of(CollapsedNode::Interior(NodeId::from_index(1)))
            .is_some());
        assert!(mini
            .mini_of(CollapsedNode::Interior(NodeId::from_index(3)))
            .is_none());
    }
}
