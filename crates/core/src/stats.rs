//! PST shape statistics (paper §4, Figures 5, 6 and 9).
//!
//! The paper characterizes PSTs of real programs as *broad and shallow*:
//! 8609 regions across 254 procedures, average nesting depth 2.68, maximum
//! 13, with ~97 % of regions at depth ≤ 6, PST size growing with procedure
//! size while depth and maximum collapsed region size stay flat. The
//! `experiments` binary in `pst-bench` regenerates those figures from these
//! statistics over the synthetic corpus.

use crate::ProgramStructureTree;

/// Shape statistics of one procedure's PST.
///
/// Depths are measured on *canonical* regions: children of the synthetic
/// root have depth 1; the root itself is not counted as a region.
///
/// # Examples
///
/// ```
/// use pst_cfg::parse_edge_list;
/// use pst_core::{ProgramStructureTree, PstStats};
/// let cfg = parse_edge_list("0->1 1->2 2->1 1->3").unwrap();
/// let pst = ProgramStructureTree::build(&cfg);
/// let stats = PstStats::of(&pst);
/// assert_eq!(stats.region_count, 2);
/// assert_eq!(stats.max_depth, 2);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct PstStats {
    /// Number of canonical SESE regions.
    pub region_count: usize,
    /// `depth_histogram[d]` = number of canonical regions at depth `d`
    /// (index 0 is always 0; kept for direct plotting).
    pub depth_histogram: Vec<usize>,
    /// Maximum canonical region depth (0 when there are no regions).
    pub max_depth: usize,
    /// Sum of canonical region depths (for averaging across procedures).
    pub total_depth: usize,
    /// Largest collapsed region size (interior nodes + immediate children),
    /// measured over canonical regions and the root.
    pub max_collapsed_size: usize,
    /// Number of CFG nodes — the paper's "procedure size".
    pub procedure_size: usize,
}

impl PstStats {
    /// Computes the statistics of `pst` in one pass (collapsed sizes are
    /// accumulated from a single interior-count table rather than per-region
    /// scans, so this stays linear on deep trees).
    pub fn of(pst: &ProgramStructureTree) -> Self {
        let mut interior = vec![0usize; pst.region_count()];
        for i in 0..pst.node_count() {
            interior[pst
                .region_of_node(pst_cfg::NodeId::from_index(i))
                .index()] += 1;
        }
        let mut depth_histogram = Vec::new();
        let mut max_depth = 0;
        let mut total_depth = 0;
        let mut max_collapsed_size = 0;
        for r in pst.regions() {
            let collapsed = interior[r.index()] + pst.children(r).len();
            max_collapsed_size = max_collapsed_size.max(collapsed);
            if r == pst.root() {
                continue;
            }
            let d = pst.depth(r);
            if depth_histogram.len() <= d {
                depth_histogram.resize(d + 1, 0);
            }
            depth_histogram[d] += 1;
            max_depth = max_depth.max(d);
            total_depth += d;
        }
        PstStats {
            region_count: pst.canonical_region_count(),
            depth_histogram,
            max_depth,
            total_depth,
            max_collapsed_size,
            procedure_size: pst.node_count(),
        }
    }

    /// Average canonical region depth (0.0 for empty PSTs).
    pub fn average_depth(&self) -> f64 {
        if self.region_count == 0 {
            0.0
        } else {
            self.total_depth as f64 / self.region_count as f64
        }
    }

    /// Fraction of regions at depth ≤ `d` (1.0 for empty PSTs).
    pub fn cumulative_at_depth(&self, d: usize) -> f64 {
        if self.region_count == 0 {
            return 1.0;
        }
        let below: usize = self.depth_histogram.iter().take(d + 1).sum();
        below as f64 / self.region_count as f64
    }

    /// Serializes the statistics as JSON (`pst_obs::json`); the schema is
    /// documented in `docs/OBSERVABILITY.md`.
    pub fn to_json(&self) -> pst_obs::json::Json {
        use pst_obs::json::Json;
        Json::obj([
            ("region_count", Json::UInt(self.region_count as u64)),
            (
                "depth_histogram",
                Json::Arr(
                    self.depth_histogram
                        .iter()
                        .map(|&c| Json::UInt(c as u64))
                        .collect(),
                ),
            ),
            ("max_depth", Json::UInt(self.max_depth as u64)),
            ("total_depth", Json::UInt(self.total_depth as u64)),
            (
                "max_collapsed_size",
                Json::UInt(self.max_collapsed_size as u64),
            ),
            ("procedure_size", Json::UInt(self.procedure_size as u64)),
        ])
    }

    /// Merges per-procedure statistics into suite-level aggregates
    /// (Figure 5 pools all 254 procedures).
    pub fn merge(stats: &[PstStats]) -> PstStats {
        let mut out = PstStats {
            region_count: 0,
            depth_histogram: Vec::new(),
            max_depth: 0,
            total_depth: 0,
            max_collapsed_size: 0,
            procedure_size: 0,
        };
        for s in stats {
            out.region_count += s.region_count;
            out.total_depth += s.total_depth;
            out.max_depth = out.max_depth.max(s.max_depth);
            out.max_collapsed_size = out.max_collapsed_size.max(s.max_collapsed_size);
            out.procedure_size += s.procedure_size;
            if out.depth_histogram.len() < s.depth_histogram.len() {
                out.depth_histogram.resize(s.depth_histogram.len(), 0);
            }
            for (d, &c) in s.depth_histogram.iter().enumerate() {
                out.depth_histogram[d] += c;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pst_cfg::parse_edge_list;

    fn stats_of(desc: &str) -> PstStats {
        let cfg = parse_edge_list(desc).unwrap();
        PstStats::of(&ProgramStructureTree::build(&cfg))
    }

    #[test]
    fn straight_line_stats() {
        let s = stats_of("0->1 1->2 2->3");
        assert_eq!(s.region_count, 2);
        assert_eq!(s.max_depth, 1);
        assert_eq!(s.depth_histogram, vec![0, 2]);
        assert!((s.average_depth() - 1.0).abs() < 1e-9);
        assert_eq!(s.procedure_size, 4);
    }

    #[test]
    fn nested_loop_depths() {
        let s = stats_of("0->1 1->2 2->3 3->2 3->1 1->4");
        assert!(s.max_depth >= 2);
        assert_eq!(s.depth_histogram.iter().sum::<usize>(), s.region_count);
    }

    #[test]
    fn cumulative_is_monotone_and_reaches_one() {
        let s = stats_of("0->1 1->2 2->3 3->2 3->1 1->4");
        let mut last = 0.0;
        for d in 0..=s.max_depth {
            let c = s.cumulative_at_depth(d);
            assert!(c >= last);
            last = c;
        }
        assert!((s.cumulative_at_depth(s.max_depth) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn merge_of_empty_slice_is_all_zero() {
        let m = PstStats::merge(&[]);
        assert_eq!(m.region_count, 0);
        assert_eq!(m.max_depth, 0);
        assert_eq!(m.total_depth, 0);
        assert_eq!(m.max_collapsed_size, 0);
        assert_eq!(m.procedure_size, 0);
        assert!(m.depth_histogram.is_empty());
        assert_eq!(m.average_depth(), 0.0);
        assert_eq!(m.cumulative_at_depth(0), 1.0);
    }

    #[test]
    fn merge_of_one_is_identity() {
        let s = stats_of("0->1 1->2 2->1 1->3");
        assert_eq!(PstStats::merge(std::slice::from_ref(&s)), s);
    }

    #[test]
    fn minimal_cfg_stats() {
        // The smallest valid CFG: one edge entry -> exit. Its only
        // canonical region is the whole procedure.
        let s = stats_of("0->1");
        assert_eq!(s.procedure_size, 2);
        assert_eq!(s.region_count, 0);
        assert_eq!(s.max_depth, 0);
        assert_eq!(s.average_depth(), 0.0);
    }

    #[test]
    fn json_round_trips() {
        let s = stats_of("0->1 1->2 2->1 1->3");
        let text = s.to_json().to_string();
        let parsed = pst_obs::json::Json::parse(&text).unwrap();
        assert_eq!(
            parsed.get("region_count").and_then(|j| j.as_u64()),
            Some(s.region_count as u64)
        );
        assert_eq!(
            parsed.get("max_depth").and_then(|j| j.as_u64()),
            Some(s.max_depth as u64)
        );
    }

    #[test]
    fn merge_sums_histograms() {
        let a = stats_of("0->1 1->2 2->3");
        let b = stats_of("0->1 1->2 2->1 1->3");
        let m = PstStats::merge(&[a.clone(), b.clone()]);
        assert_eq!(m.region_count, a.region_count + b.region_count);
        assert_eq!(m.total_depth, a.total_depth + b.total_depth);
        assert_eq!(m.max_depth, a.max_depth.max(b.max_depth));
        assert_eq!(m.depth_histogram.iter().sum::<usize>(), m.region_count);
    }
}
