//! The Program Structure Tree (paper §2.2, §3.6).
//!
//! Canonical SESE regions never partially overlap (Theorem 1), so they nest
//! into a tree. [`ProgramStructureTree::build`] constructs the tree in
//! `O(E)`: cycle-equivalence classes give the canonical regions, and a
//! single walk over the DFS spanning tree of the CFG threads each node and
//! edge into its innermost region. A synthetic *root region* represents the
//! whole procedure, so every node/edge has an owning region even outside
//! any canonical SESE pair.

use pst_cfg::{Cfg, Dfs, DirectedEdgeKind, EdgeId, NodeId};

use crate::sese::{canonical_regions, CanonicalRegions, SeseRegion};

/// Identifier of a region in a [`ProgramStructureTree`].
///
/// Region 0 is always the synthetic root; canonical regions follow in
/// DFS-discovery order of their entry edges.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionId(u32);

impl RegionId {
    /// Creates a region id from a dense index.
    pub fn from_index(index: usize) -> Self {
        RegionId(u32::try_from(index).expect("region index overflows u32"))
    }

    /// Dense index of this region.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for RegionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[derive(Clone, Debug)]
struct RegionData {
    bounds: Option<SeseRegion>,
    parent: Option<RegionId>,
    children: Vec<RegionId>,
    depth: u32,
    pre: u32,
    post: u32,
}

/// The program structure tree of a control flow graph.
///
/// # Examples
///
/// ```
/// use pst_cfg::parse_edge_list;
/// use pst_core::ProgramStructureTree;
/// // while loop: the loop-body region nests inside the loop region.
/// let cfg = parse_edge_list("0->1 1->2 2->1 1->3").unwrap();
/// let pst = ProgramStructureTree::build(&cfg);
/// assert_eq!(pst.canonical_region_count(), 2);
/// let body = pst.region_of_node(pst_cfg::NodeId::from_index(2));
/// let outer = pst.parent(body).unwrap();
/// assert_eq!(pst.parent(outer), Some(pst.root()));
/// assert_eq!(pst.depth(body), 2);
/// ```
#[derive(Clone, Debug)]
pub struct ProgramStructureTree {
    regions: Vec<RegionData>,
    node_region: Vec<RegionId>,
    edge_region: Vec<RegionId>,
    detection: Option<CanonicalRegions>,
}

impl ProgramStructureTree {
    /// Builds the PST of `cfg` in linear time.
    ///
    /// # Panics
    ///
    /// Panics if internal stack discipline is violated — that would
    /// indicate a bug in the cycle-equivalence layer, not bad user input
    /// (any valid [`Cfg`] is acceptable, including irreducible ones).
    pub fn build(cfg: &Cfg) -> Self {
        let _span = pst_obs::Span::enter("pst");
        let detection = canonical_regions(cfg);
        Self::from_detection(cfg, detection)
    }

    fn from_detection(cfg: &Cfg, detection: CanonicalRegions) -> Self {
        let graph = cfg.graph();
        let m = graph.edge_count();

        // Region ids: 0 = root, then canonical regions in detection order.
        let mut regions: Vec<RegionData> = Vec::with_capacity(detection.regions.len() + 1);
        regions.push(RegionData {
            bounds: None,
            parent: None,
            children: Vec::new(),
            depth: 0,
            pre: 0,
            post: 0,
        });
        let mut entry_of: Vec<Option<RegionId>> = vec![None; m];
        let mut exit_of: Vec<Option<RegionId>> = vec![None; m];
        for (i, &r) in detection.regions.iter().enumerate() {
            let id = RegionId::from_index(i + 1);
            regions.push(RegionData {
                bounds: Some(r),
                parent: None,
                children: Vec::new(),
                depth: 0,
                pre: 0,
                post: 0,
            });
            entry_of[r.entry.index()] = Some(id);
            exit_of[r.exit.index()] = Some(id);
        }

        // Thread nodes and edges into their innermost regions along the DFS
        // spanning tree. The "current region" is a property of the node at
        // the tail of each edge (per-path state), not of global traversal
        // time: crossing an edge first closes the region it exits, then
        // opens the region it enters.
        let root = RegionId::from_index(0);
        let dfs = Dfs::new(graph, cfg.entry());
        let mut node_region: Vec<RegionId> = vec![root; graph.node_count()];
        let mut edge_region: Vec<RegionId> = vec![root; m];

        let region_after_crossing =
            |e: EdgeId, at_source: RegionId, regions: &[RegionData]| -> RegionId {
                let mut state = at_source;
                if let Some(r) = exit_of[e.index()] {
                    debug_assert_eq!(state, r, "exit edge {e:?} crossed while not in its region");
                    state = regions[r.index()].parent.unwrap_or(root);
                }
                if let Some(r) = entry_of[e.index()] {
                    state = r;
                }
                state
            };

        // First pass: tree edges in preorder assign node regions and region
        // parents (a region's entry edge is examined exactly once).
        for &v in dfs.preorder_nodes() {
            let Some(e) = dfs.parent_edge(v) else {
                node_region[v.index()] = root; // the entry node
                continue;
            };
            let u = graph.source(e);
            let mut state = node_region[u.index()];
            if let Some(r) = exit_of[e.index()] {
                debug_assert_eq!(state, r, "exit edge crossed while not in its region");
                state = regions[r.index()].parent.unwrap_or(root);
            }
            if let Some(r) = entry_of[e.index()] {
                regions[r.index()].parent = Some(state);
                state = r;
            }
            node_region[v.index()] = state;
            edge_region[e.index()] = state;
        }
        // Second pass: non-tree edges (their regions' parents are all set).
        for e in graph.edges() {
            if dfs.edge_kind(e) != Some(DirectedEdgeKind::Tree) {
                let u = graph.source(e);
                edge_region[e.index()] = region_after_crossing(e, node_region[u.index()], &regions);
            }
        }

        // Every canonical region's entry edge dominates the region's first
        // interior node and therefore lies on the DFS tree path to it — so
        // the first pass has set every parent link.
        for (i, r) in regions.iter().enumerate().skip(1) {
            assert!(
                r.parent.is_some(),
                "region {i} has a non-tree entry edge; SESE invariant violated"
            );
        }

        // Children, depths, and pre/post intervals.
        for i in 1..regions.len() {
            let p = regions[i].parent.expect("non-root region has a parent");
            regions[p.index()].children.push(RegionId::from_index(i));
        }
        assign_depths_and_intervals(&mut regions);

        // Telemetry: the shape of every build feeds two fleet-mergeable
        // histograms — nesting depth per canonical region, and innermost
        // size (nodes whose tightest enclosing region is this one).
        if pst_obs::enabled() {
            let mut innermost_size = vec![0u64; regions.len()];
            for r in &node_region {
                innermost_size[r.index()] += 1;
            }
            for (i, r) in regions.iter().enumerate().skip(1) {
                pst_obs::histogram!("pst_region_depth", r.depth as u64);
                pst_obs::histogram!("pst_region_size", innermost_size[i]);
            }
        }

        ProgramStructureTree {
            regions,
            node_region,
            edge_region,
            detection: Some(detection),
        }
    }

    /// The synthetic root region representing the whole procedure.
    pub fn root(&self) -> RegionId {
        RegionId::from_index(0)
    }

    /// Total number of regions, including the root.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Number of canonical SESE regions (excludes the synthetic root).
    pub fn canonical_region_count(&self) -> usize {
        self.regions.len() - 1
    }

    /// Iterates over all region ids (root first).
    pub fn regions(&self) -> impl ExactSizeIterator<Item = RegionId> {
        (0..self.regions.len()).map(RegionId::from_index)
    }

    /// The `(entry, exit)` edge pair of a canonical region, `None` for the
    /// root.
    pub fn bounds(&self, region: RegionId) -> Option<SeseRegion> {
        self.regions[region.index()].bounds
    }

    /// Entry edge of a canonical region (`None` for the root).
    pub fn entry_edge(&self, region: RegionId) -> Option<EdgeId> {
        self.bounds(region).map(|b| b.entry)
    }

    /// Exit edge of a canonical region (`None` for the root).
    pub fn exit_edge(&self, region: RegionId) -> Option<EdgeId> {
        self.bounds(region).map(|b| b.exit)
    }

    /// Parent region (`None` for the root).
    pub fn parent(&self, region: RegionId) -> Option<RegionId> {
        self.regions[region.index()].parent
    }

    /// Immediately nested regions, in entry-edge discovery order.
    pub fn children(&self, region: RegionId) -> &[RegionId] {
        &self.regions[region.index()].children
    }

    /// Nesting depth (root = 0, its children = 1, …).
    pub fn depth(&self, region: RegionId) -> usize {
        self.regions[region.index()].depth as usize
    }

    /// Innermost region containing `node`.
    ///
    /// A region's boundary nodes follow Definition 6: the target of the
    /// entry edge is *inside*, the target of the exit edge is *outside*.
    pub fn region_of_node(&self, node: NodeId) -> RegionId {
        self.node_region[node.index()]
    }

    /// Innermost region associated with `edge`. A region's entry edge is
    /// associated with the region itself; its exit edge with the parent.
    pub fn region_of_edge(&self, edge: EdgeId) -> RegionId {
        self.edge_region[edge.index()]
    }

    /// Whether region `outer` contains region `inner` (reflexively). O(1).
    pub fn region_contains(&self, outer: RegionId, inner: RegionId) -> bool {
        let o = &self.regions[outer.index()];
        let i = &self.regions[inner.index()];
        o.pre <= i.pre && i.post <= o.post
    }

    /// Whether `node` lies inside `region` (at any nesting depth). O(1).
    pub fn contains_node(&self, region: RegionId, node: NodeId) -> bool {
        self.region_contains(region, self.region_of_node(node))
    }

    /// Nodes whose *innermost* region is `region` (O(N) scan).
    pub fn interior_nodes(&self, region: RegionId) -> Vec<NodeId> {
        (0..self.node_region.len())
            .filter(|&i| self.node_region[i] == region)
            .map(NodeId::from_index)
            .collect()
    }

    /// All nodes inside `region` at any depth (O(N) scan).
    pub fn all_nodes(&self, region: RegionId) -> Vec<NodeId> {
        (0..self.node_region.len())
            .filter(|&i| self.region_contains(region, self.node_region[i]))
            .map(NodeId::from_index)
            .collect()
    }

    /// The child of `region` that contains `node`, if `node` is in a
    /// proper sub-region; `None` if `node` is interior to `region` itself
    /// (or outside it entirely).
    pub fn child_containing(&self, region: RegionId, node: NodeId) -> Option<RegionId> {
        let mut r = self.region_of_node(node);
        if !self.region_contains(region, r) || r == region {
            return None;
        }
        while self.parent(r) != Some(region) {
            r = self.parent(r)?;
        }
        Some(r)
    }

    /// Region *size* in the paper's collapsed sense: interior nodes plus
    /// immediately nested regions each counted as one statement.
    pub fn collapsed_size(&self, region: RegionId) -> usize {
        let interior = self.node_region.iter().filter(|&&r| r == region).count();
        interior + self.children(region).len()
    }

    /// Number of CFG nodes the tree was built over.
    pub fn node_count(&self) -> usize {
        self.node_region.len()
    }

    /// The region-detection artifacts (cycle-equivalence classes and
    /// ordered class lists) the tree was built from. `None` for trees
    /// produced by incremental splicing
    /// ([`insert_edge`](crate::insert_edge)), which never runs the global
    /// cycle-equivalence pass.
    pub fn detection(&self) -> Option<&CanonicalRegions> {
        self.detection.as_ref()
    }

    /// A canonical, id-independent representation of the tree: regions
    /// keyed by their boundary edges, with parent bounds and per-node /
    /// per-edge innermost bounds. Two PSTs of the same CFG are structurally
    /// equal iff their signatures are equal — used to verify incremental
    /// maintenance against from-scratch rebuilds.
    pub fn signature(&self) -> PstSignature {
        let key = |r: RegionId| self.bounds(r).map(|b| (b.entry, b.exit));
        let mut regions: Vec<_> = self
            .regions()
            .map(|r| (key(r), self.parent(r).and_then(key)))
            .collect();
        regions.sort();
        PstSignature {
            regions,
            node_region: self.node_region.iter().map(|&r| key(r)).collect(),
            edge_region: self.edge_region.iter().map(|&r| key(r)).collect(),
        }
    }

    /// Detaches `region` from its parent and re-attaches it under
    /// `new_parent`, recomputing depths and containment intervals so the
    /// mutated tree is *internally* coherent — only a semantic check
    /// against the CFG (dominance / region membership) can tell it apart
    /// from a correct tree. Returns `false` (leaving the tree untouched)
    /// when the move is inapplicable: `region` is the root, the move is a
    /// no-op, or `new_parent` lies inside `region` (which would create a
    /// cycle).
    ///
    /// Deliberately corrupts the tree; only for testing that verification
    /// catches structural faults.
    #[cfg(feature = "fault-inject")]
    pub fn fault_reparent(&mut self, region: RegionId, new_parent: RegionId) -> bool {
        let Some(old_parent) = self.parent(region) else {
            return false; // the root cannot be reparented
        };
        if region == new_parent
            || old_parent == new_parent
            || self.region_contains(region, new_parent)
        {
            return false;
        }
        let old = &mut self.regions[old_parent.index()];
        let pos = old
            .children
            .iter()
            .position(|&c| c == region)
            .expect("parent lists region as a child");
        old.children.remove(pos);
        self.regions[new_parent.index()].children.push(region);
        self.regions[region.index()].parent = Some(new_parent);
        assign_depths_and_intervals(&mut self.regions);
        true
    }

    /// Pretty-prints the nesting structure, one region per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut stack = vec![self.root()];
        while let Some(r) = stack.pop() {
            let indent = "  ".repeat(self.depth(r));
            match self.bounds(r) {
                Some(b) => {
                    out.push_str(&format!("{indent}{r}: entry {} exit {}\n", b.entry, b.exit))
                }
                None => out.push_str(&format!("{indent}{r}: <procedure>\n")),
            }
            for &c in self.children(r).iter().rev() {
                stack.push(c);
            }
        }
        out
    }
}

/// Recomputes `depth`, `pre`, and `post` for a region forest whose
/// `parent`/`children` links are already consistent and rooted at region 0.
fn assign_depths_and_intervals(regions: &mut [RegionData]) {
    let root = RegionId::from_index(0);
    let mut clock = 0u32;
    let mut stack: Vec<(RegionId, usize)> = vec![(root, 0)];
    regions[root.index()].pre = clock;
    regions[root.index()].depth = 0;
    clock += 1;
    while let Some(&mut (r, ref mut next)) = stack.last_mut() {
        if *next < regions[r.index()].children.len() {
            let c = regions[r.index()].children[*next];
            *next += 1;
            regions[c.index()].pre = clock;
            clock += 1;
            regions[c.index()].depth = regions[r.index()].depth + 1;
            stack.push((c, 0));
        } else {
            regions[r.index()].post = clock;
            clock += 1;
            stack.pop();
        }
    }
}

/// A region's identity inside a [`PstSignature`]: its (entry, exit) edge
/// pair, or `None` for the root pseudo-region.
type SignatureBounds = Option<(EdgeId, EdgeId)>;

/// Id-independent structural identity of a PST (see
/// [`ProgramStructureTree::signature`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PstSignature {
    regions: Vec<(SignatureBounds, SignatureBounds)>,
    node_region: Vec<SignatureBounds>,
    edge_region: Vec<SignatureBounds>,
}

/// Assembles a tree from explicit parts — the splice step of incremental
/// maintenance. `records[i] = (bounds, parent-index)`; record 0 must be
/// the root (no bounds, no parent). Depths and pre/post intervals are
/// recomputed; `detection` is absent.
pub(crate) fn rebuild_from_parts(
    records: Vec<(Option<SeseRegion>, Option<usize>)>,
    node_region: Vec<usize>,
    edge_region: Vec<usize>,
) -> ProgramStructureTree {
    assert!(
        records[0].0.is_none() && records[0].1.is_none(),
        "record 0 is the root"
    );
    let mut regions: Vec<RegionData> = records
        .iter()
        .map(|&(bounds, parent)| RegionData {
            bounds,
            parent: parent.map(RegionId::from_index),
            children: Vec::new(),
            depth: 0,
            pre: 0,
            post: 0,
        })
        .collect();
    for i in 1..regions.len() {
        let p = regions[i].parent.expect("non-root region has a parent");
        regions[p.index()].children.push(RegionId::from_index(i));
    }
    assign_depths_and_intervals(&mut regions);
    ProgramStructureTree {
        regions,
        node_region: node_region.into_iter().map(RegionId::from_index).collect(),
        edge_region: edge_region.into_iter().map(RegionId::from_index).collect(),
        detection: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pst_cfg::parse_edge_list;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn straight_line_pst() {
        let cfg = parse_edge_list("0->1 1->2 2->3").unwrap();
        let pst = ProgramStructureTree::build(&cfg);
        // Regions (01,12) and (12,23) are sequentially composed siblings.
        assert_eq!(pst.canonical_region_count(), 2);
        let kids = pst.children(pst.root());
        assert_eq!(kids.len(), 2);
        assert_eq!(pst.depth(kids[0]), 1);
        assert_eq!(pst.region_of_node(n(1)), kids[0]);
        assert_eq!(pst.region_of_node(n(2)), kids[1]);
        assert_eq!(pst.region_of_node(n(0)), pst.root());
        assert_eq!(pst.region_of_node(n(3)), pst.root());
    }

    #[test]
    fn diamond_pst() {
        let cfg = parse_edge_list("0->1 0->2 1->3 2->3").unwrap();
        let pst = ProgramStructureTree::build(&cfg);
        assert_eq!(pst.canonical_region_count(), 2);
        let arm1 = pst.region_of_node(n(1));
        let arm2 = pst.region_of_node(n(2));
        assert_ne!(arm1, arm2);
        assert_eq!(pst.parent(arm1), Some(pst.root()));
        assert_eq!(pst.parent(arm2), Some(pst.root()));
    }

    #[test]
    fn while_loop_nesting() {
        let cfg = parse_edge_list("0->1 1->2 2->1 1->3").unwrap();
        let pst = ProgramStructureTree::build(&cfg);
        let body = pst.region_of_node(n(2));
        let outer = pst.region_of_node(n(1));
        assert_eq!(pst.parent(body), Some(outer));
        assert_eq!(pst.parent(outer), Some(pst.root()));
        assert!(pst.region_contains(outer, body));
        assert!(!pst.region_contains(body, outer));
        assert!(pst.contains_node(outer, n(2)));
        assert!(!pst.contains_node(body, n(1)));
    }

    #[test]
    fn nested_loops_depths() {
        let cfg = parse_edge_list("0->1 1->2 2->3 3->2 3->1 1->4").unwrap();
        let pst = ProgramStructureTree::build(&cfg);
        // node 3: innermost loop body.
        let inner = pst.region_of_node(n(3));
        assert!(pst.depth(inner) >= 2);
        // Depth increases strictly along the parent chain to the root.
        let mut r = inner;
        let mut last = pst.depth(r);
        while let Some(p) = pst.parent(r) {
            assert!(pst.depth(p) < last);
            last = pst.depth(p);
            r = p;
        }
        assert_eq!(r, pst.root());
    }

    #[test]
    fn irreducible_graph_has_pst() {
        let cfg = parse_edge_list("0->1 0->2 1->2 2->1 1->3 2->3").unwrap();
        let pst = ProgramStructureTree::build(&cfg);
        // The irreducible core collapses into the root region; the edges
        // into/out of the procedure still delimit regions.
        assert!(pst.region_count() >= 1);
        for r in pst.regions() {
            if let Some(p) = pst.parent(r) {
                assert!(pst.region_contains(p, r));
            }
        }
    }

    #[test]
    fn child_containing_walks_to_immediate_child() {
        let cfg = parse_edge_list("0->1 1->2 2->3 3->2 3->1 1->4").unwrap();
        let pst = ProgramStructureTree::build(&cfg);
        let innermost = pst.region_of_node(n(3));
        let top = pst.children(pst.root())[0];
        let c = pst.child_containing(top, n(3)).unwrap();
        assert_eq!(pst.parent(c), Some(top));
        assert!(pst.region_contains(c, innermost));
        // A node interior to the region itself yields None.
        assert_eq!(pst.child_containing(innermost, n(3)), None);
    }

    #[test]
    fn collapsed_sizes() {
        let cfg = parse_edge_list("0->1 1->2 2->3").unwrap();
        let pst = ProgramStructureTree::build(&cfg);
        let kids = pst.children(pst.root());
        // Each chain region has exactly one interior node and no children.
        assert_eq!(pst.collapsed_size(kids[0]), 1);
        // Root: interior nodes 0 and 3, two child regions.
        assert_eq!(pst.collapsed_size(pst.root()), 4);
    }

    #[test]
    fn render_shows_nesting() {
        let cfg = parse_edge_list("0->1 1->2 2->1 1->3").unwrap();
        let pst = ProgramStructureTree::build(&cfg);
        let s = pst.render();
        assert!(s.contains("<procedure>"));
        assert!(s.lines().count() == pst.region_count());
    }

    #[test]
    fn every_region_reachable_from_root() {
        let cfg =
            parse_edge_list("0->1 1->2 2->3 2->4 3->5 4->5 5->6 6->7 7->6 6->8 8->9 8->10 9->11 10->11 11->8 8->12 12->13")
                .unwrap();
        let pst = ProgramStructureTree::build(&cfg);
        let mut seen = vec![false; pst.region_count()];
        let mut stack = vec![pst.root()];
        while let Some(r) = stack.pop() {
            seen[r.index()] = true;
            stack.extend(pst.children(r).iter().copied());
        }
        assert!(seen.into_iter().all(|s| s));
    }
}
