//! Graphviz rendering of a CFG with its PST overlaid as nested clusters.
//!
//! Each SESE region becomes a `subgraph cluster_…` containing its interior
//! nodes and, recursively, its child regions — the visual counterpart of
//! the paper's Figure 1(a), where regions are drawn as dashed boxes around
//! the flow graph.

use std::fmt::Write as _;

use pst_cfg::Cfg;

use crate::{ProgramStructureTree, RegionId};

/// Renders `cfg` in DOT syntax with regions as nested clusters.
///
/// Pipe through `dot -Tsvg` to draw. Node labels are plain node ids;
/// callers wanting statement text can post-process or use the plain
/// [`pst_cfg::graph_to_dot_with`] export.
///
/// # Examples
///
/// ```
/// use pst_cfg::parse_edge_list;
/// use pst_core::{pst_to_dot, ProgramStructureTree};
/// let cfg = parse_edge_list("0->1 1->2 2->1 1->3").unwrap();
/// let pst = ProgramStructureTree::build(&cfg);
/// let dot = pst_to_dot(&cfg, &pst);
/// assert!(dot.contains("subgraph cluster_r1"));
/// ```
pub fn pst_to_dot(cfg: &Cfg, pst: &ProgramStructureTree) -> String {
    let mut out = String::new();
    out.push_str("digraph pst {\n");
    out.push_str("  compound=true;\n  node [shape=box, fontname=\"monospace\"];\n");
    render_region(cfg, pst, pst.root(), 1, &mut out);
    for e in cfg.graph().edges() {
        let (s, t) = cfg.graph().endpoints(e);
        let _ = writeln!(out, "  {s} -> {t} [label=\"{e}\"];");
    }
    out.push_str("}\n");
    out
}

fn render_region(
    cfg: &Cfg,
    pst: &ProgramStructureTree,
    region: RegionId,
    depth: usize,
    out: &mut String,
) {
    let pad = "  ".repeat(depth);
    if region != pst.root() {
        let bounds = pst.bounds(region).expect("canonical region");
        let _ = writeln!(out, "{pad}subgraph cluster_{region} {{");
        let _ = writeln!(
            out,
            "{pad}  label=\"{region} ({} .. {})\"; style=dashed;",
            bounds.entry, bounds.exit
        );
    }
    let inner_pad = if region == pst.root() {
        pad.clone()
    } else {
        format!("{pad}  ")
    };
    for node in pst.interior_nodes(region) {
        let marker = if node == cfg.entry() {
            " (entry)"
        } else if node == cfg.exit() {
            " (exit)"
        } else {
            ""
        };
        let _ = writeln!(out, "{inner_pad}{node} [label=\"{node}{marker}\"];");
    }
    for &child in pst.children(region) {
        render_region(cfg, pst, child, depth + 1, out);
    }
    if region != pst.root() {
        let _ = writeln!(out, "{pad}}}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pst_cfg::parse_edge_list;

    #[test]
    fn clusters_nest_like_the_tree() {
        let cfg = parse_edge_list("0->1 1->2 2->1 1->3").unwrap();
        let pst = ProgramStructureTree::build(&cfg);
        let dot = pst_to_dot(&cfg, &pst);
        // Loop region cluster contains the body region cluster.
        let outer = dot.find("subgraph cluster_r1").expect("outer cluster");
        let inner = dot.find("subgraph cluster_r2").expect("inner cluster");
        assert!(outer < inner);
        // All nodes and edges appear.
        for i in 0..4 {
            assert!(dot.contains(&format!("n{i}")));
        }
        assert_eq!(dot.matches(" -> ").count(), cfg.edge_count());
    }

    #[test]
    fn entry_and_exit_are_marked() {
        let cfg = parse_edge_list("0->1 1->2").unwrap();
        let pst = ProgramStructureTree::build(&cfg);
        let dot = pst_to_dot(&cfg, &pst);
        assert!(dot.contains("(entry)"));
        assert!(dot.contains("(exit)"));
    }

    #[test]
    fn braces_balance() {
        let cfg =
            parse_edge_list("0->1 1->2 2->3 2->4 3->5 4->5 5->6 6->7 7->6 6->8 8->9").unwrap();
        let pst = ProgramStructureTree::build(&cfg);
        let dot = pst_to_dot(&cfg, &pst);
        assert_eq!(dot.matches('{').count(), dot.matches('}').count(),);
    }
}
