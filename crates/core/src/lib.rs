//! **The Program Structure Tree** — a reproduction of Johnson, Pearson &
//! Pingali, *"The Program Structure Tree: Computing Control Regions in
//! Linear Time"*, PLDI 1994.
//!
//! This crate implements the paper's contributions end to end:
//!
//! * [`CycleEquiv`] — the `O(E)` cycle-equivalence algorithm (paper
//!   Figure 4) over one undirected DFS with the constant-time
//!   [`bracket`] -list ADT and capping backedges, plus three slower
//!   independent implementations used as oracles and baselines
//!   ([`cycle_equiv_slow_brackets`] for §3.3's explicit bracket sets,
//!   [`cycle_equiv_slow_directed`] / [`cycle_equiv_slow_undirected`] for
//!   the reachability-based definitions).
//! * [`canonical_regions`] / [`SeseRegion`] — single-entry single-exit
//!   regions of arbitrary (including irreducible) control flow graphs via
//!   Theorem 2's reduction to cycle equivalence in `S = G + (end→start)`.
//! * [`ProgramStructureTree`] — the nesting tree of canonical regions
//!   (Theorem 1), with O(1) containment queries and per-node/per-edge
//!   innermost-region maps.
//! * [`ControlRegions`] — control-dependence equivalence classes in
//!   `O(E)` via the node-expansion transformation (Theorems 7 and 8),
//!   where previous algorithms were `O(EN)` or restricted to reducible
//!   graphs.
//! * [`classify_regions`] / [`RegionKind`] and [`PstStats`] — the §4
//!   empirical characterization (region kinds, depth/size statistics).
//!
//! # Quick start
//!
//! ```
//! use pst_cfg::parse_edge_list;
//! use pst_core::{ProgramStructureTree, ControlRegions};
//!
//! // while (c) { body }  followed by an exit block
//! let cfg = parse_edge_list("0->1 1->2 2->1 1->3").unwrap();
//!
//! let pst = ProgramStructureTree::build(&cfg);
//! assert_eq!(pst.canonical_region_count(), 2); // loop region + body region
//! println!("{}", pst.render());
//!
//! let regions = ControlRegions::compute(&cfg);
//! assert_eq!(regions.num_classes(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bracket;
mod classify;
mod collapse;
mod control_regions;
mod cycle_equiv;
mod dot;
mod incremental;
mod pst;
mod sese;
mod slow_brackets;
mod stats;

pub use classify::{classify_regions, RegionClassification, RegionKind};
pub use collapse::{collapse_all, CollapsedNode, CollapsedRegion};
pub use control_regions::{node_expand, ControlRegions};
pub use cycle_equiv::{
    cycle_equiv_slow_directed, cycle_equiv_slow_undirected, CycleEquiv, CycleEquivError,
    OracleBudgetExceeded,
};
pub use dot::pst_to_dot;
pub use incremental::{insert_edge, EdgeInsertion, InsertEdgeError};
pub use pst::{ProgramStructureTree, PstSignature, RegionId};
pub use sese::{canonical_regions, CanonicalRegions, SeseRegion};
pub use slow_brackets::{cycle_equiv_slow_brackets, cycle_equiv_slow_brackets_unchecked};
pub use stats::PstStats;
