//! The `BracketList` abstract data type of the paper's §3.5.
//!
//! The fast cycle-equivalence algorithm maintains, per tree node, a list of
//! *brackets* — backedges that span the tree edge into that node — with the
//! operations `create`, `size`, `push`, `top`, `delete`, `concat`, all in
//! constant time. Following the paper, the concrete representation is a
//! doubly-linked list (here arena-backed, with indices instead of pointers)
//! plus an explicit size; every bracket records the list cell it occupies so
//! deletion from the middle is O(1).
//!
//! Brackets also carry the bookkeeping fields of the paper's Figure 4:
//! `recentSize` and `recentClass` (the compact `<top bracket, set size>`
//! naming device) and `class` (for the backedge itself).

use pst_cfg::EdgeId;

/// Index of a bracket in a [`BracketArena`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BracketId(u32);

impl BracketId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// Sentinel-free linked-list cell plus the algorithm's per-bracket fields.
#[derive(Clone, Debug)]
struct BracketCell {
    prev: Option<BracketId>,
    next: Option<BracketId>,
    /// Real backedge this bracket stands for; `None` for capping backedges.
    edge: Option<EdgeId>,
    /// `e.recentSize` of Figure 4.
    recent_size: usize,
    /// `e.recentClass` of Figure 4 (`u32::MAX` = undefined).
    recent_class: u32,
    /// `e.class` of Figure 4 (`u32::MAX` = undefined).
    class: u32,
}

/// Sentinel for "no class assigned yet".
pub(crate) const UNDEFINED_CLASS: u32 = u32::MAX;

/// Arena owning every bracket cell created during one run of the
/// cycle-equivalence algorithm.
///
/// Lists ([`BracketList`]) are lightweight handles (head, tail, size) into
/// this arena. All list operations take the arena explicitly, which keeps
/// the borrow checker happy without `Rc<RefCell<_>>` overhead.
///
/// # Examples
///
/// ```
/// use pst_core::bracket::{BracketArena, BracketList};
/// let mut arena = BracketArena::new();
/// let mut list = BracketList::new();
/// let a = arena.new_bracket(None);
/// let b = arena.new_bracket(None);
/// arena.push(&mut list, a);
/// arena.push(&mut list, b);
/// assert_eq!(list.size(), 2);
/// assert_eq!(arena.top(&list), Some(b));
/// arena.delete(&mut list, a); // delete from the *bottom*
/// assert_eq!(list.size(), 1);
/// assert_eq!(arena.top(&list), Some(b));
/// ```
#[derive(Clone, Debug, Default)]
pub struct BracketArena {
    cells: Vec<BracketCell>,
}

/// A handle to one bracket list: head (top), tail (bottom) and size.
#[derive(Clone, Copy, Debug, Default)]
pub struct BracketList {
    head: Option<BracketId>,
    tail: Option<BracketId>,
    size: usize,
}

impl BracketArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        BracketArena::default()
    }

    /// Creates an empty arena sized for `n` brackets.
    pub fn with_capacity(n: usize) -> Self {
        BracketArena {
            cells: Vec::with_capacity(n),
        }
    }

    /// Allocates a fresh bracket. `edge` is the CFG edge it represents, or
    /// `None` for a capping backedge.
    pub fn new_bracket(&mut self, edge: Option<EdgeId>) -> BracketId {
        let id = BracketId(u32::try_from(self.cells.len()).expect("too many brackets"));
        self.cells.push(BracketCell {
            prev: None,
            next: None,
            edge,
            recent_size: usize::MAX,
            recent_class: UNDEFINED_CLASS,
            class: UNDEFINED_CLASS,
        });
        id
    }

    /// The CFG edge a bracket represents (`None` for capping brackets).
    pub fn edge_of(&self, b: BracketId) -> Option<EdgeId> {
        self.cells[b.index()].edge
    }

    /// `recentSize` bookkeeping field.
    pub fn recent_size(&self, b: BracketId) -> usize {
        self.cells[b.index()].recent_size
    }

    /// Updates `recentSize`.
    pub fn set_recent_size(&mut self, b: BracketId, size: usize) {
        self.cells[b.index()].recent_size = size;
    }

    /// `recentClass` bookkeeping field (`u32::MAX` = undefined).
    pub fn recent_class(&self, b: BracketId) -> u32 {
        self.cells[b.index()].recent_class
    }

    /// Updates `recentClass`.
    pub fn set_recent_class(&mut self, b: BracketId, class: u32) {
        self.cells[b.index()].recent_class = class;
    }

    /// The backedge's own equivalence class (`u32::MAX` = undefined).
    pub fn class(&self, b: BracketId) -> u32 {
        self.cells[b.index()].class
    }

    /// Sets the backedge's own equivalence class.
    pub fn set_class(&mut self, b: BracketId, class: u32) {
        self.cells[b.index()].class = class;
    }

    /// Pushes `b` on top of `list`. O(1).
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `b` is already linked into some list.
    pub fn push(&mut self, list: &mut BracketList, b: BracketId) {
        debug_assert!(
            self.cells[b.index()].prev.is_none() && self.cells[b.index()].next.is_none(),
            "bracket already linked"
        );
        match list.head {
            Some(old) => {
                self.cells[b.index()].next = Some(old);
                self.cells[old.index()].prev = Some(b);
            }
            None => list.tail = Some(b),
        }
        list.head = Some(b);
        list.size += 1;
        pst_obs::counter!("brackets_pushed");
    }

    /// The topmost bracket of `list`, if any. O(1).
    pub fn top(&self, list: &BracketList) -> Option<BracketId> {
        list.head
    }

    /// Deletes `b` from anywhere inside `list`. O(1).
    ///
    /// The caller must ensure `b` is currently an element of `list` (the
    /// algorithm guarantees this: a backedge is deleted exactly once, at its
    /// upper endpoint, from the one list that has absorbed it).
    pub fn delete(&mut self, list: &mut BracketList, b: BracketId) {
        let (prev, next) = {
            let c = &self.cells[b.index()];
            (c.prev, c.next)
        };
        match prev {
            Some(p) => self.cells[p.index()].next = next,
            None => list.head = next,
        }
        match next {
            Some(n) => self.cells[n.index()].prev = prev,
            None => list.tail = prev,
        }
        let c = &mut self.cells[b.index()];
        c.prev = None;
        c.next = None;
        debug_assert!(list.size > 0, "delete from empty bracket list");
        list.size -= 1;
        pst_obs::counter!("brackets_popped");
    }

    /// Concatenates two lists in O(1): `upper` ends up on top of `lower`.
    /// Both inputs are consumed.
    pub fn concat(&mut self, upper: BracketList, lower: BracketList) -> BracketList {
        match (upper.tail, lower.head) {
            (Some(ut), Some(lh)) => {
                self.cells[ut.index()].next = Some(lh);
                self.cells[lh.index()].prev = Some(ut);
                BracketList {
                    head: upper.head,
                    tail: lower.tail,
                    size: upper.size + lower.size,
                }
            }
            (None, _) => lower,
            (_, None) => upper,
        }
    }

    /// The elements of `list` from top to bottom (O(n); test helper).
    pub fn elements(&self, list: &BracketList) -> Vec<BracketId> {
        let mut out = Vec::with_capacity(list.size);
        let mut cur = list.head;
        while let Some(b) = cur {
            out.push(b);
            cur = self.cells[b.index()].next;
        }
        out
    }
}

impl BracketList {
    /// Creates an empty list (`create()` of the paper).
    pub fn new() -> Self {
        BracketList::default()
    }

    /// Number of brackets in the list (`size()` of the paper). O(1).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh(arena: &mut BracketArena, n: usize) -> Vec<BracketId> {
        (0..n).map(|_| arena.new_bracket(None)).collect()
    }

    #[test]
    fn push_top_size() {
        let mut a = BracketArena::new();
        let mut l = BracketList::new();
        assert!(l.is_empty());
        assert_eq!(a.top(&l), None);
        let bs = fresh(&mut a, 3);
        for &b in &bs {
            a.push(&mut l, b);
        }
        assert_eq!(l.size(), 3);
        assert_eq!(a.top(&l), Some(bs[2]));
        assert_eq!(a.elements(&l), vec![bs[2], bs[1], bs[0]]);
    }

    #[test]
    fn delete_from_middle() {
        let mut a = BracketArena::new();
        let mut l = BracketList::new();
        let bs = fresh(&mut a, 3);
        for &b in &bs {
            a.push(&mut l, b);
        }
        a.delete(&mut l, bs[1]);
        assert_eq!(l.size(), 2);
        assert_eq!(a.elements(&l), vec![bs[2], bs[0]]);
    }

    #[test]
    fn delete_top_and_bottom() {
        let mut a = BracketArena::new();
        let mut l = BracketList::new();
        let bs = fresh(&mut a, 3);
        for &b in &bs {
            a.push(&mut l, b);
        }
        a.delete(&mut l, bs[2]); // top
        assert_eq!(a.top(&l), Some(bs[1]));
        a.delete(&mut l, bs[0]); // bottom
        assert_eq!(a.elements(&l), vec![bs[1]]);
        a.delete(&mut l, bs[1]);
        assert!(l.is_empty());
        assert_eq!(a.top(&l), None);
    }

    #[test]
    fn concat_order_and_size() {
        let mut a = BracketArena::new();
        let mut upper = BracketList::new();
        let mut lower = BracketList::new();
        let bs = fresh(&mut a, 4);
        a.push(&mut lower, bs[0]);
        a.push(&mut lower, bs[1]);
        a.push(&mut upper, bs[2]);
        a.push(&mut upper, bs[3]);
        let l = a.concat(upper, lower);
        assert_eq!(l.size(), 4);
        assert_eq!(a.elements(&l), vec![bs[3], bs[2], bs[1], bs[0]]);
    }

    #[test]
    fn concat_with_empty() {
        let mut a = BracketArena::new();
        let mut only = BracketList::new();
        let b = a.new_bracket(None);
        a.push(&mut only, b);
        let l = a.concat(BracketList::new(), only);
        assert_eq!(l.size(), 1);
        let l2 = a.concat(l, BracketList::new());
        assert_eq!(l2.size(), 1);
        assert_eq!(a.top(&l2), Some(b));
    }

    #[test]
    fn delete_after_concat() {
        let mut a = BracketArena::new();
        let mut upper = BracketList::new();
        let mut lower = BracketList::new();
        let bs = fresh(&mut a, 4);
        a.push(&mut lower, bs[0]);
        a.push(&mut lower, bs[1]);
        a.push(&mut upper, bs[2]);
        a.push(&mut upper, bs[3]);
        let mut l = a.concat(upper, lower);
        // Delete one element from what used to be each constituent list.
        a.delete(&mut l, bs[1]);
        a.delete(&mut l, bs[3]);
        assert_eq!(a.elements(&l), vec![bs[2], bs[0]]);
        assert_eq!(l.size(), 2);
    }

    #[test]
    fn reuse_after_delete() {
        // A bracket deleted from one list can be pushed onto another — the
        // algorithm never does this, but the cell state must stay clean.
        let mut a = BracketArena::new();
        let mut l1 = BracketList::new();
        let mut l2 = BracketList::new();
        let b = a.new_bracket(None);
        a.push(&mut l1, b);
        a.delete(&mut l1, b);
        a.push(&mut l2, b);
        assert_eq!(a.elements(&l2), vec![b]);
    }

    #[test]
    fn bookkeeping_fields_roundtrip() {
        let mut a = BracketArena::new();
        let e = EdgeId::from_index(9);
        let b = a.new_bracket(Some(e));
        assert_eq!(a.edge_of(b), Some(e));
        assert_eq!(a.class(b), UNDEFINED_CLASS);
        a.set_class(b, 4);
        a.set_recent_size(b, 2);
        a.set_recent_class(b, 7);
        assert_eq!(a.class(b), 4);
        assert_eq!(a.recent_size(b), 2);
        assert_eq!(a.recent_class(b), 7);
    }
}
