//! Cycle equivalence of edges — the paper's core algorithmic contribution.
//!
//! Two edges of a strongly connected graph are *cycle equivalent* iff every
//! cycle contains both or neither (Definition 4). Theorem 3 lets the
//! computation run on the **undirected** multigraph, where one depth-first
//! search suffices: every non-tree edge is a backedge, a tree edge's cycle
//! class is named by its set of *brackets* (Theorem 5), and bracket sets
//! get compact `<top bracket, size>` names maintained with O(1)
//! [`BracketList`](crate::bracket::BracketList) operations and *capping
//! backedges* at branch points (§3.4–3.5, Figure 4).
//!
//! [`CycleEquiv::compute`] implements the linear-time algorithm;
//! [`cycle_equiv_slow_directed`] and [`cycle_equiv_slow_undirected`] are the
//! quadratic reachability-based oracles used to validate it.

use std::error::Error;
use std::fmt;

use pst_cfg::{EdgeId, Graph, NodeId, UndirectedDfs, UndirectedEdgeKind};

use crate::bracket::{BracketArena, BracketId, BracketList, UNDEFINED_CLASS};

/// Why cycle equivalence could not be computed for an input graph.
///
/// Machine-generated graphs routinely violate the algorithm's
/// connectivity precondition; these are answers, not crashes. See also
/// `pst_cfg::canonicalize`, which repairs such inputs up front.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CycleEquivError {
    /// The graph has no nodes, so there is no root to search from.
    EmptyGraph,
    /// The root is not a node of the graph.
    UnknownRoot(NodeId),
    /// The graph is not connected when viewed undirected: `unreached` was
    /// not discovered by the search from `root`.
    Disconnected {
        /// The search root.
        root: NodeId,
        /// The lowest-numbered node the search never reached.
        unreached: NodeId,
    },
}

impl fmt::Display for CycleEquivError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CycleEquivError::EmptyGraph => write!(f, "graph has no nodes"),
            CycleEquivError::UnknownRoot(n) => {
                write!(f, "root {n} is not a node of the graph")
            }
            CycleEquivError::Disconnected { root, unreached } => write!(
                f,
                "graph is not undirected-connected: {unreached} is unreachable from root {root}"
            ),
        }
    }
}

impl Error for CycleEquivError {}

/// A partition of a graph's edges into cycle-equivalence classes.
///
/// Class ids are dense (`0..num_classes()`), renumbered in edge-id order so
/// that results are deterministic and easy to compare across algorithms.
///
/// # Examples
///
/// In a simple cycle, all edges are equivalent; a chord splits them:
///
/// ```
/// use pst_cfg::Graph;
/// use pst_core::CycleEquiv;
/// let mut g = Graph::new();
/// let n = g.add_nodes(3);
/// let e01 = g.add_edge(n[0], n[1]);
/// let e12 = g.add_edge(n[1], n[2]);
/// let e20 = g.add_edge(n[2], n[0]);
/// let ce = CycleEquiv::compute(&g, n[0]).unwrap();
/// assert_eq!(ce.class(e01), ce.class(e12));
/// assert_eq!(ce.class(e12), ce.class(e20));
/// assert_eq!(ce.num_classes(), 1);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CycleEquiv {
    class_of: Vec<u32>,
    num_classes: u32,
}

impl CycleEquiv {
    /// Runs the linear-time cycle-equivalence algorithm (paper Figure 4)
    /// over `graph`, starting the undirected DFS at `root`.
    ///
    /// `graph` must be *connected* when viewed as an undirected multigraph
    /// (a strongly connected directed graph always is). For strongly
    /// connected inputs the result equals directed cycle equivalence
    /// (Theorem 3); for merely connected inputs it is the undirected
    /// notion: bridges (edges on no cycle) share one vacuous class and each
    /// self-loop is a singleton class.
    ///
    /// # Errors
    ///
    /// Returns a [`CycleEquivError`] when the graph is empty, the root is
    /// not a node, or the graph is not undirected-connected. Callers that
    /// have already established connectivity (e.g. via the `G + (exit →
    /// entry)` closure of a valid CFG) can use
    /// [`CycleEquiv::compute_unchecked`] instead.
    pub fn compute(graph: &Graph, root: NodeId) -> Result<Self, CycleEquivError> {
        if graph.is_empty() {
            return Err(CycleEquivError::EmptyGraph);
        }
        if root.index() >= graph.node_count() {
            return Err(CycleEquivError::UnknownRoot(root));
        }
        let _span = pst_obs::Span::enter("cycle_equiv");
        let dfs = UndirectedDfs::new(graph, root);
        if let Some(unreached) = dfs.first_unreached() {
            return Err(CycleEquivError::Disconnected { root, unreached });
        }
        Ok(Self::compute_with_dfs(graph, &dfs))
    }

    /// [`CycleEquiv::compute`] without the connectivity check — the
    /// internal hot path for graphs already known to be connected.
    ///
    /// On a disconnected graph the result is meaningless for edges of the
    /// unreached components (debug builds assert connectivity); use
    /// [`CycleEquiv::compute`] whenever the input is not under the
    /// caller's control.
    pub fn compute_unchecked(graph: &Graph, root: NodeId) -> Self {
        let _span = pst_obs::Span::enter("cycle_equiv");
        let dfs = UndirectedDfs::new(graph, root);
        debug_assert!(
            dfs.is_connected(),
            "cycle equivalence requires an undirected-connected graph"
        );
        Self::compute_with_dfs(graph, &dfs)
    }

    /// Shared body of [`CycleEquiv::compute`] /
    /// [`CycleEquiv::compute_unchecked`]: the paper's Figure 4 over an
    /// already-run (and connected) undirected DFS.
    fn compute_with_dfs(graph: &Graph, dfs: &UndirectedDfs) -> Self {
        pst_obs::gauge!("cycle_equiv_nodes", graph.node_count());
        pst_obs::gauge!("cycle_equiv_edges", graph.edge_count());
        let n = graph.node_count();
        const INF: usize = usize::MAX;

        let mut arena = BracketArena::with_capacity(graph.edge_count());
        // Bracket allocated for each real backedge, indexed by edge.
        let mut bracket_of_edge: Vec<Option<BracketId>> = vec![None; graph.edge_count()];
        for e in graph.edges() {
            if dfs.edge_kind(e) == UndirectedEdgeKind::Back {
                bracket_of_edge[e.index()] = Some(arena.new_bracket(Some(e)));
            }
        }

        let mut next_class: u32 = 0;
        let mut new_class = || {
            let c = next_class;
            next_class += 1;
            c
        };

        let mut hi = vec![INF; n];
        let mut blist: Vec<BracketList> = vec![BracketList::new(); n];
        // Capping brackets to delete at their (ancestor) destination node.
        let mut capping_down: Vec<Vec<BracketId>> = vec![Vec::new(); n];
        let mut class_of_edge: Vec<u32> = vec![UNDEFINED_CLASS; graph.edge_count()];

        // Reverse depth-first (descending dfsnum) order: every node is
        // processed after all of its tree descendants.
        for &node in dfs.nodes_by_dfsnum().iter().rev() {
            let ni = node.index();
            let my_dfsnum = dfs.dfsnum(node);

            // hi0: highest (minimum dfsnum) destination among backedges
            // whose lower endpoint is this node.
            let mut hi0 = INF;
            for &b in dfs.backedges_up(node) {
                hi0 = hi0.min(dfs.dfsnum(dfs.back_upper(graph, b)));
            }
            // hi1/hi2: best and second-best `hi` among the children.
            let mut hi1 = INF;
            let mut hi2 = INF;
            for &c in dfs.children(node) {
                let h = hi[c.index()];
                if h < hi1 {
                    hi2 = hi1;
                    hi1 = h;
                } else if h < hi2 {
                    hi2 = h;
                }
            }
            hi[ni] = hi0.min(hi1);

            // Merge the children's bracket lists (child lists on top, in
            // discovery order; the order is arbitrary per the paper).
            let mut list = BracketList::new();
            for &c in dfs.children(node) {
                let child_list = std::mem::take(&mut blist[c.index()]);
                list = arena.concat(child_list, list);
            }
            // Delete capping backedges that end here.
            for b in std::mem::take(&mut capping_down[ni]) {
                arena.delete(&mut list, b);
            }
            // Delete real backedges from descendants that end here; a
            // backedge that never became a compact name gets a fresh class.
            for &e in dfs.backedges_down(node) {
                let b = bracket_of_edge[e.index()].expect("backedge has a bracket");
                arena.delete(&mut list, b);
                if arena.class(b) == UNDEFINED_CLASS {
                    arena.set_class(b, new_class());
                }
                class_of_edge[e.index()] = arena.class(b);
            }
            // Push backedges from this node to ancestors.
            for &e in dfs.backedges_up(node) {
                let b = bracket_of_edge[e.index()].expect("backedge has a bracket");
                arena.push(&mut list, b);
            }
            // Capping backedge: needed when brackets of two different
            // subtrees survive past this node and no own backedge already
            // tops them both. (`hi2 < my_dfsnum` guards the degenerate case
            // where the second subtree's backedges all end at or below this
            // node — the paper's Figure 4 elides that guard.)
            if hi2 < hi0 && hi2 < my_dfsnum {
                pst_obs::counter!("brackets_capped");
                let d = arena.new_bracket(None);
                capping_down[dfs.node_with_dfsnum(hi2).index()].push(d);
                arena.push(&mut list, d);
            }

            // Determine the class of the tree edge from parent(node).
            if let Some(e) = dfs.parent_edge(node) {
                if let Some(b) = arena.top(&list) {
                    if arena.recent_size(b) != list.size() {
                        pst_obs::counter!("recent_size_recomputed");
                        arena.set_recent_size(b, list.size());
                        arena.set_recent_class(b, new_class());
                    }
                    class_of_edge[e.index()] = arena.recent_class(b);
                    // A tree edge with exactly one bracket is cycle
                    // equivalent to that backedge (Theorem 4).
                    if arena.recent_size(b) == 1 {
                        arena.set_class(b, arena.recent_class(b));
                    }
                } else {
                    // Bridge: on no cycle at all. All bridges are vacuously
                    // cycle equivalent to each other; mark with a shared
                    // sentinel resolved during renumbering.
                    class_of_edge[e.index()] = BRIDGE_SENTINEL;
                }
            }
            blist[ni] = list;
        }

        // Self-loops: each is a singleton class.
        for &e in dfs.self_loops() {
            class_of_edge[e.index()] = new_class();
        }

        Self::renumber(class_of_edge)
    }

    /// Renumbers raw class labels densely in edge-id order. The
    /// `BRIDGE_SENTINEL` label maps to a single shared class.
    fn renumber(raw: Vec<u32>) -> Self {
        // Raw labels are either small counter values (bounded by the edge
        // count in practice) or the bridge sentinel, so a dense side table
        // beats hashing.
        let bound = raw
            .iter()
            .filter(|&&l| l != BRIDGE_SENTINEL)
            .max()
            .map_or(0, |&m| m as usize + 1);
        let mut map = vec![UNDEFINED_CLASS; bound];
        let mut bridge_class = UNDEFINED_CLASS;
        let mut class_of = Vec::with_capacity(raw.len());
        let mut next = 0u32;
        for label in raw {
            debug_assert_ne!(label, UNDEFINED_CLASS, "edge left unclassified");
            let slot = if label == BRIDGE_SENTINEL {
                &mut bridge_class
            } else {
                &mut map[label as usize]
            };
            if *slot == UNDEFINED_CLASS {
                *slot = next;
                next += 1;
            }
            class_of.push(*slot);
        }
        CycleEquiv {
            class_of,
            num_classes: next,
        }
    }

    /// Builds a `CycleEquiv` directly from a class array (used by the slow
    /// oracles and tests); labels are renumbered densely.
    pub fn from_classes(raw: Vec<u32>) -> Self {
        Self::renumber(raw)
    }

    /// The class of `edge`.
    pub fn class(&self, edge: EdgeId) -> u32 {
        self.class_of[edge.index()]
    }

    /// Number of distinct classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes as usize
    }

    /// Whether two edges are cycle equivalent.
    pub fn same_class(&self, a: EdgeId, b: EdgeId) -> bool {
        self.class(a) == self.class(b)
    }

    /// The classes as a slice indexed by edge.
    pub fn classes(&self) -> &[u32] {
        &self.class_of
    }

    /// Groups edge ids by class: `groups()[c]` lists the edges of class
    /// `c` in edge-id order.
    pub fn groups(&self) -> Vec<Vec<EdgeId>> {
        let mut out = vec![Vec::new(); self.num_classes()];
        for (i, &c) in self.class_of.iter().enumerate() {
            out[c as usize].push(EdgeId::from_index(i));
        }
        out
    }
}

/// Raw label shared by all bridge edges before renumbering.
const BRIDGE_SENTINEL: u32 = u32::MAX - 1;

/// The step budget of a slow cycle-equivalence oracle ran out before the
/// computation finished.
///
/// The quadratic oracles exist for cross-checking; on large graphs a
/// budgeted call degrades into this error instead of stalling the caller
/// (e.g. `pst --canonicalize` or the `pst-verify` checkers) for minutes.
/// Steps are approximate node-plus-edge traversal counts, so budgets are
/// portable across graph shapes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OracleBudgetExceeded {
    /// The step budget the call was given.
    pub budget: u64,
}

impl fmt::Display for OracleBudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycle-equivalence oracle exceeded its step budget of {}",
            self.budget
        )
    }
}

impl Error for OracleBudgetExceeded {}

/// Deducts `cost` steps from the remaining budget, erring when it runs dry.
/// `None` means unlimited.
fn spend(remaining: &mut Option<u64>, cost: u64, budget: u64) -> Result<(), OracleBudgetExceeded> {
    if let Some(left) = remaining {
        if *left < cost {
            return Err(OracleBudgetExceeded { budget });
        }
        *left -= cost;
    }
    Ok(())
}

/// Quadratic oracle for **directed** cycle equivalence.
///
/// Edges `a`, `b` are inequivalent iff some directed cycle contains exactly
/// one of them; a cycle through `a` avoiding `b` exists iff `target(a)`
/// reaches `source(a)` in the graph without `b`. Intended for testing on
/// small graphs (O(E²·(N+E)) time).
///
/// On a strongly connected graph this agrees with [`CycleEquiv::compute`]
/// (Theorem 3); the property tests check exactly that.
///
/// # Errors
///
/// `budget` caps the work in approximate node-plus-edge traversal steps;
/// `None` is unlimited (the call then always succeeds). A budgeted call
/// that would exceed the cap returns [`OracleBudgetExceeded`] instead of
/// running long.
pub fn cycle_equiv_slow_directed(
    graph: &Graph,
    budget: Option<u64>,
) -> Result<CycleEquiv, OracleBudgetExceeded> {
    let m = graph.edge_count();
    let total = budget.unwrap_or(0);
    let mut remaining = budget;
    // Each reachability probe walks at most every node and edge once.
    let probe_cost = (graph.node_count() + m) as u64 + 1;
    // on_cycle_avoiding[a][b] = exists directed cycle through a avoiding b.
    let mut next_label = 0u32;
    let mut labels = vec![UNDEFINED_CLASS; m];
    let in_cycle_avoiding = |a: EdgeId, b: Option<EdgeId>| -> bool {
        if Some(a) == b {
            return false;
        }
        let reach = graph.reachable_from_avoiding(graph.target(a), b);
        reach[graph.source(a).index()]
    };
    for i in 0..m {
        if labels[i] != UNDEFINED_CLASS {
            continue;
        }
        let a = EdgeId::from_index(i);
        labels[i] = next_label;
        for (j, label) in labels.iter_mut().enumerate().skip(i + 1) {
            if *label != UNDEFINED_CLASS {
                continue;
            }
            spend(&mut remaining, 2 * probe_cost, total)?;
            let b = EdgeId::from_index(j);
            let cyc_a_not_b = in_cycle_avoiding(a, Some(b));
            let cyc_b_not_a = in_cycle_avoiding(b, Some(a));
            if !cyc_a_not_b && !cyc_b_not_a {
                *label = next_label;
            }
        }
        next_label += 1;
    }
    Ok(CycleEquiv::from_classes(labels))
}

/// Quadratic oracle for **undirected** cycle equivalence (the notion the
/// fast algorithm computes on arbitrary connected graphs).
///
/// An undirected cycle through edge `a` avoiding edge `b` exists iff, in
/// the multigraph without `b`, `a` is a self-loop or a non-bridge. Bridge
/// detection is done per removed edge with a DFS, giving O(E²) total.
///
/// # Errors
///
/// `budget` caps the work in approximate node-plus-edge traversal steps;
/// `None` is unlimited (the call then always succeeds). A budgeted call
/// that would exceed the cap returns [`OracleBudgetExceeded`] instead of
/// running long.
pub fn cycle_equiv_slow_undirected(
    graph: &Graph,
    budget: Option<u64>,
) -> Result<CycleEquiv, OracleBudgetExceeded> {
    let m = graph.edge_count();
    let total = budget.unwrap_or(0);
    let mut remaining = budget;
    let sweep_cost = (graph.node_count() + m) as u64 + 1;
    let mut labels = vec![UNDEFINED_CLASS; m];
    let mut next_label = 0u32;

    // in_cycle_without[b.index()][a.index()] = a lies on an undirected
    // cycle of G - {b}. Precompute per removed edge.
    let mut in_cycle_without: Vec<Vec<bool>> = Vec::with_capacity(m);
    for i in 0..m {
        spend(&mut remaining, sweep_cost, total)?;
        in_cycle_without.push(edges_on_cycles(graph, Some(EdgeId::from_index(i))));
    }

    for i in 0..m {
        if labels[i] != UNDEFINED_CLASS {
            continue;
        }
        let a = EdgeId::from_index(i);
        labels[i] = next_label;
        for j in (i + 1)..m {
            if labels[j] != UNDEFINED_CLASS {
                continue;
            }
            spend(&mut remaining, 1, total)?;
            let b = EdgeId::from_index(j);
            let cyc_a_not_b = in_cycle_without[j][a.index()];
            let cyc_b_not_a = in_cycle_without[i][b.index()];
            if !cyc_a_not_b && !cyc_b_not_a {
                labels[j] = next_label;
            }
        }
        next_label += 1;
    }
    Ok(CycleEquiv::from_classes(labels))
}

/// For each edge: does it lie on some undirected cycle of `graph` minus
/// `removed`? Self-loops always do; other edges do iff they are not
/// bridges of their component.
fn edges_on_cycles(graph: &Graph, removed: Option<EdgeId>) -> Vec<bool> {
    let n = graph.node_count();
    let m = graph.edge_count();
    let mut result = vec![false; m];
    let mut disc = vec![usize::MAX; n];
    let mut low = vec![usize::MAX; n];
    let mut clock = 0usize;

    // Self-loops are one-edge cycles.
    for e in graph.edges() {
        if Some(e) != removed && graph.is_self_loop(e) {
            result[e.index()] = true;
        }
    }

    let incident = |v: NodeId| -> Vec<EdgeId> {
        graph
            .incident_edges(v)
            .filter(|&e| Some(e) != removed && !graph.is_self_loop(e))
            .collect()
    };

    // Iterative undirected DFS computing bridges via low-links. `via` is
    // the exact edge id used to enter a node: a second, parallel edge to
    // the parent is a genuine backedge and correctly prevents bridge-hood.
    for start in graph.nodes() {
        if disc[start.index()] != usize::MAX {
            continue;
        }
        let mut stack: Vec<(NodeId, Option<EdgeId>, Vec<EdgeId>, usize)> = Vec::new();
        disc[start.index()] = clock;
        low[start.index()] = clock;
        clock += 1;
        stack.push((start, None, incident(start), 0));
        while let Some(&mut (v, via, ref inc, ref mut idx)) = stack.last_mut() {
            if *idx < inc.len() {
                let e = inc[*idx];
                *idx += 1;
                if Some(e) == via {
                    continue; // the tree edge we came through (appears once here)
                }
                let w = graph.other_endpoint(e, v);
                if disc[w.index()] == usize::MAX {
                    disc[w.index()] = clock;
                    low[w.index()] = clock;
                    clock += 1;
                    let next_inc = incident(w);
                    stack.push((w, Some(e), next_inc, 0));
                } else {
                    // Non-tree edge: it closes a cycle, and its other
                    // endpoint bounds our low-link.
                    result[e.index()] = true;
                    low[v.index()] = low[v.index()].min(disc[w.index()]);
                }
            } else {
                let (child, entering) = (v, via);
                stack.pop();
                if let Some(&mut (p, _, _, _)) = stack.last_mut() {
                    low[p.index()] = low[p.index()].min(low[child.index()]);
                    if let Some(te) = entering {
                        // Tree edge (p, child): on a cycle iff not a bridge.
                        if low[child.index()] <= disc[p.index()] {
                            result[te.index()] = true;
                        }
                    }
                }
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use pst_cfg::parse_edge_list;

    /// Checks the fast algorithm against both oracles on a strongly
    /// connected closure of a CFG description.
    fn check(desc: &str) {
        let cfg = parse_edge_list(desc).unwrap();
        let (s, _) = cfg.to_strongly_connected();
        let fast = CycleEquiv::compute(&s, cfg.entry()).unwrap();
        let slow_d = cycle_equiv_slow_directed(&s, None).unwrap();
        let slow_u = cycle_equiv_slow_undirected(&s, None).unwrap();
        assert_eq!(fast, slow_d, "fast vs directed oracle on {desc}");
        assert_eq!(fast, slow_u, "fast vs undirected oracle on {desc}");
    }

    #[test]
    fn straight_line() {
        check("0->1 1->2 2->3");
    }

    #[test]
    fn diamond() {
        check("0->1 0->2 1->3 2->3");
    }

    #[test]
    fn while_loop() {
        check("0->1 1->2 2->1 1->3");
    }

    #[test]
    fn repeat_loop() {
        check("0->1 1->2 2->1 2->3");
    }

    #[test]
    fn nested_loops() {
        check("0->1 1->2 2->3 3->2 3->1 1->4");
    }

    #[test]
    fn irreducible() {
        check("0->1 0->2 1->2 2->1 1->3 2->3");
    }

    #[test]
    fn self_loop() {
        check("0->1 1->1 1->2");
    }

    #[test]
    fn parallel_edges() {
        check("0->1 0->1 1->2");
    }

    #[test]
    fn overlapping_loops_unstructured() {
        // Figure 3(b)-style: backedges not properly nested.
        check("0->1 1->2 2->3 3->4 4->5 3->1 5->2 5->6");
    }

    #[test]
    fn branchy_graph_with_caps() {
        // Figure 3(c)-style: a node with multiple children whose bracket
        // sets must be merged with a capping backedge.
        check("0->1 1->2 1->3 2->4 3->4 2->2 3->5 4->5 2->5");
    }

    #[test]
    fn straight_line_classes_chain() {
        let cfg = parse_edge_list("0->1 1->2 2->3").unwrap();
        let (s, back) = cfg.to_strongly_connected();
        let ce = CycleEquiv::compute(&s, cfg.entry()).unwrap();
        // All four CFG edges plus the virtual backedge lie on the single
        // cycle: one class.
        assert_eq!(ce.num_classes(), 1);
        assert_eq!(ce.class(back), 0);
    }

    #[test]
    fn diamond_classes() {
        let cfg = parse_edge_list("0->1 0->2 1->3 2->3").unwrap();
        let (s, back) = cfg.to_strongly_connected();
        let g = cfg.graph();
        let ce = CycleEquiv::compute(&s, cfg.entry()).unwrap();
        let e = |a: usize, b: usize| {
            g.edges()
                .find(|&e| g.source(e).index() == a && g.target(e).index() == b)
                .unwrap()
        };
        // The two arm pairs are equivalent within themselves.
        assert!(ce.same_class(e(0, 1), e(1, 3)));
        assert!(ce.same_class(e(0, 2), e(2, 3)));
        assert!(!ce.same_class(e(0, 1), e(0, 2)));
        // The virtual backedge is in its own class here (every cycle
        // through it uses one arm or the other).
        assert!(!ce.same_class(back, e(0, 1)));
    }

    #[test]
    fn two_self_loops_are_distinct_singletons() {
        let cfg = parse_edge_list("0->1 1->1 1->2 2->2 2->3").unwrap();
        let (s, _) = cfg.to_strongly_connected();
        let g = cfg.graph();
        let ce = CycleEquiv::compute(&s, cfg.entry()).unwrap();
        let loops: Vec<EdgeId> = g.edges().filter(|&e| g.is_self_loop(e)).collect();
        assert_eq!(loops.len(), 2);
        assert!(!ce.same_class(loops[0], loops[1]));
        check("0->1 1->1 1->2 2->2 2->3");
    }

    #[test]
    fn bridges_share_a_vacuous_class() {
        // A bare tree (undirected) has only bridges.
        let mut g = Graph::new();
        let n = g.add_nodes(4);
        let e1 = g.add_edge(n[0], n[1]);
        let e2 = g.add_edge(n[0], n[2]);
        let e3 = g.add_edge(n[2], n[3]);
        let ce = CycleEquiv::compute(&g, n[0]).unwrap();
        assert_eq!(ce.num_classes(), 1);
        assert!(ce.same_class(e1, e2) && ce.same_class(e2, e3));
        let slow = cycle_equiv_slow_undirected(&g, None).unwrap();
        assert_eq!(ce, slow);
    }

    #[test]
    fn mixed_bridges_and_cycles() {
        // bridge into a cycle: undirected semantics.
        let mut g = Graph::new();
        let n = g.add_nodes(4);
        let bridge = g.add_edge(n[0], n[1]);
        let c1 = g.add_edge(n[1], n[2]);
        let c2 = g.add_edge(n[2], n[3]);
        let c3 = g.add_edge(n[3], n[1]);
        let ce = CycleEquiv::compute(&g, n[0]).unwrap();
        let slow = cycle_equiv_slow_undirected(&g, None).unwrap();
        assert_eq!(ce, slow);
        assert!(ce.same_class(c1, c2) && ce.same_class(c2, c3));
        assert!(!ce.same_class(bridge, c1));
    }

    #[test]
    fn oracle_budgets_degrade_gracefully() {
        let cfg = parse_edge_list("0->1 1->2 2->1 1->3 0->3 3->4").unwrap();
        let (s, _) = cfg.to_strongly_connected();
        // A one-step budget cannot even finish the precompute.
        assert_eq!(
            cycle_equiv_slow_undirected(&s, Some(1)).unwrap_err(),
            OracleBudgetExceeded { budget: 1 }
        );
        assert_eq!(
            cycle_equiv_slow_directed(&s, Some(1)).unwrap_err(),
            OracleBudgetExceeded { budget: 1 }
        );
        let err = cycle_equiv_slow_directed(&s, Some(1)).unwrap_err();
        assert!(err.to_string().contains("step budget of 1"));
        // A generous budget returns the same partition as unlimited.
        let unlimited = cycle_equiv_slow_undirected(&s, None).unwrap();
        let budgeted = cycle_equiv_slow_undirected(&s, Some(1_000_000)).unwrap();
        assert_eq!(unlimited, budgeted);
        assert_eq!(
            cycle_equiv_slow_directed(&s, Some(1_000_000)).unwrap(),
            cycle_equiv_slow_directed(&s, None).unwrap()
        );
    }

    #[test]
    fn disconnected_graph_errors() {
        let mut g = Graph::new();
        let n = g.add_nodes(3);
        g.add_edge(n[0], n[1]);
        let err = CycleEquiv::compute(&g, n[0]).unwrap_err();
        assert_eq!(
            err,
            CycleEquivError::Disconnected {
                root: n[0],
                unreached: n[2],
            }
        );
        assert!(err.to_string().contains("n2 is unreachable from root n0"));
    }

    #[test]
    fn empty_and_unknown_root_error() {
        let g = Graph::new();
        assert_eq!(
            CycleEquiv::compute(&g, NodeId::from_index(0)).unwrap_err(),
            CycleEquivError::EmptyGraph
        );
        let mut g = Graph::new();
        g.add_node();
        let ghost = NodeId::from_index(5);
        assert_eq!(
            CycleEquiv::compute(&g, ghost).unwrap_err(),
            CycleEquivError::UnknownRoot(ghost)
        );
    }

    #[test]
    fn groups_partition_edges() {
        let cfg = parse_edge_list("0->1 1->2 2->1 1->3").unwrap();
        let (s, _) = cfg.to_strongly_connected();
        let ce = CycleEquiv::compute(&s, cfg.entry()).unwrap();
        let groups = ce.groups();
        let total: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, s.edge_count());
        for (c, group) in groups.iter().enumerate() {
            for &e in group {
                assert_eq!(ce.class(e) as usize, c);
            }
        }
    }

    #[test]
    fn figure1_paper_graph() {
        // An approximation of the paper's Figure 1 control flow graph:
        // start -> a-chain with nested conditional and a loop region.
        check("0->1 1->2 2->3 2->4 3->5 4->5 5->6 6->7 7->6 6->8 8->9 8->10 9->11 10->11 11->8 8->12 12->13");
    }
}
