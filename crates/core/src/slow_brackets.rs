//! The paper's §3.3 "slow" cycle-equivalence algorithm: explicit bracket
//! sets.
//!
//! During an undirected depth-first traversal, the bracket set of the tree
//! edge into a node is (children's sets ∪ backedges up from the node) minus
//! backedges ending at the node. Tree edges are cycle equivalent iff their
//! bracket sets are equal (Theorem 5); a backedge is equivalent to a tree
//! edge iff it is that edge's only bracket (Theorem 4); two backedges are
//! never equivalent. Building and hashing whole sets costs O(E²) in the
//! worst case — this implementation exists as an independently-derived
//! oracle and as the baseline for the ablation benchmark that motivates
//! the compact `<top, size>` names of §3.4.

use std::collections::HashMap;

use pst_cfg::{Graph, NodeId, UndirectedDfs, UndirectedEdgeKind};

use crate::{CycleEquiv, CycleEquivError};

/// Computes cycle-equivalence classes with explicit bracket sets.
///
/// Semantics are identical to [`CycleEquiv::compute`] (undirected cycle
/// equivalence of a connected multigraph); the two implementations
/// cross-validate each other in the property tests.
///
/// # Errors
///
/// Returns a [`CycleEquivError`] when the graph is empty, the root is not
/// a node, or the graph is not undirected-connected — the same contract as
/// [`CycleEquiv::compute`].
pub fn cycle_equiv_slow_brackets(graph: &Graph, root: NodeId) -> Result<CycleEquiv, CycleEquivError> {
    if graph.is_empty() {
        return Err(CycleEquivError::EmptyGraph);
    }
    if root.index() >= graph.node_count() {
        return Err(CycleEquivError::UnknownRoot(root));
    }
    let dfs = UndirectedDfs::new(graph, root);
    if let Some(unreached) = dfs.first_unreached() {
        return Err(CycleEquivError::Disconnected { root, unreached });
    }
    Ok(slow_brackets_with_dfs(graph, &dfs))
}

/// [`cycle_equiv_slow_brackets`] without the connectivity check, mirroring
/// [`CycleEquiv::compute_unchecked`] for callers (benchmarks, ablations)
/// that feed graphs already known to be connected.
pub fn cycle_equiv_slow_brackets_unchecked(graph: &Graph, root: NodeId) -> CycleEquiv {
    let dfs = UndirectedDfs::new(graph, root);
    debug_assert!(
        dfs.is_connected(),
        "cycle equivalence requires an undirected-connected graph"
    );
    slow_brackets_with_dfs(graph, &dfs)
}

/// Shared body: §3.3's explicit bracket sets over a connected DFS.
fn slow_brackets_with_dfs(graph: &Graph, dfs: &UndirectedDfs) -> CycleEquiv {
    let n = graph.node_count();
    let m = graph.edge_count();

    // Bracket set (sorted vec of backedge ids) per node's subtree, i.e. for
    // the tree edge from parent(n) to n.
    let mut sets: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut raw = vec![u32::MAX; m];
    let mut next = 0u32;
    let mut new_class = || {
        let c = next;
        next += 1;
        c
    };

    // Class per bracket-set, and the sole-bracket edge of singleton sets so
    // backedges can join (Theorem 4).
    let mut class_of_set: HashMap<Vec<usize>, u32> = HashMap::new();
    let mut backedge_class: Vec<Option<u32>> = vec![None; m];

    for &node in dfs.nodes_by_dfsnum().iter().rev() {
        let mut set: Vec<usize> = Vec::new();
        for &c in dfs.children(node) {
            set.append(&mut sets[c.index()]);
        }
        for &e in dfs.backedges_up(node) {
            set.push(e.index());
        }
        set.sort_unstable();
        // Remove backedges that end at this node.
        let ends_here: Vec<usize> = dfs.backedges_down(node).iter().map(|e| e.index()).collect();
        set.retain(|e| !ends_here.contains(e));

        if let Some(tree_edge) = dfs.parent_edge(node) {
            let class = *class_of_set
                .entry(set.clone())
                .or_insert_with(&mut new_class);
            raw[tree_edge.index()] = class;
            if set.len() == 1 {
                backedge_class[set[0]] = Some(class);
            }
        }
        sets[node.index()] = set;
    }

    for e in graph.edges() {
        match dfs.edge_kind(e) {
            UndirectedEdgeKind::Back => {
                raw[e.index()] = match backedge_class[e.index()] {
                    Some(c) => c,
                    None => new_class(),
                };
            }
            UndirectedEdgeKind::SelfLoop => raw[e.index()] = new_class(),
            UndirectedEdgeKind::Tree => debug_assert_ne!(raw[e.index()], u32::MAX),
            UndirectedEdgeKind::Unreached => unreachable!("graph is connected"),
        }
    }
    CycleEquiv::from_classes(raw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cycle_equiv_slow_undirected, CycleEquiv};
    use pst_cfg::parse_edge_list;

    fn check(desc: &str) {
        let cfg = parse_edge_list(desc).unwrap();
        let (s, _) = cfg.to_strongly_connected();
        let brackets = cycle_equiv_slow_brackets(&s, cfg.entry()).unwrap();
        let fast = CycleEquiv::compute(&s, cfg.entry()).unwrap();
        let oracle = cycle_equiv_slow_undirected(&s, None).unwrap();
        assert_eq!(brackets, fast, "{desc}");
        assert_eq!(brackets, oracle, "{desc}");
    }

    #[test]
    fn agrees_on_structured_graphs() {
        check("0->1 1->2 2->3");
        check("0->1 0->2 1->3 2->3");
        check("0->1 1->2 2->1 1->3");
        check("0->1 1->2 2->3 3->2 3->1 1->4");
    }

    #[test]
    fn agrees_on_unstructured_graphs() {
        check("0->1 0->2 1->2 2->1 1->3 2->3");
        check("0->1 1->2 2->3 3->4 4->5 3->1 5->2 5->6");
        check("0->1 1->2 1->3 2->4 3->4 2->2 3->5 4->5 2->5");
    }

    #[test]
    fn agrees_with_self_loops_and_parallels() {
        check("0->1 1->1 1->2 2->2 2->3");
        check("0->1 0->1 1->2");
    }

    #[test]
    fn tree_only_graph_bridges() {
        let mut g = pst_cfg::Graph::new();
        let n = g.add_nodes(4);
        g.add_edge(n[0], n[1]);
        g.add_edge(n[1], n[2]);
        g.add_edge(n[1], n[3]);
        let slow = cycle_equiv_slow_brackets(&g, n[0]).unwrap();
        assert_eq!(slow.num_classes(), 1);
    }

    #[test]
    fn disconnected_graph_errors() {
        let mut g = pst_cfg::Graph::new();
        let n = g.add_nodes(3);
        g.add_edge(n[0], n[1]);
        let err = cycle_equiv_slow_brackets(&g, n[0]).unwrap_err();
        assert_eq!(
            err,
            CycleEquivError::Disconnected {
                root: n[0],
                unreached: n[2],
            }
        );
    }
}
