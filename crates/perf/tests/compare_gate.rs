//! Regression-gate contracts (`pst bench --compare`, exit code 6) and a
//! schema round-trip property for `BENCH_<label>.json` reports.

use proptest::test_runner::ProptestConfig;
use proptest::proptest;
use pst_obs::json::Json;
use pst_perf::{
    compare, AllocStats, BenchConfig, BenchReport, BootstrapConfig, GateConfig, PhaseReport,
    RegressionKind, SplitMix64, Summary, WorkloadReport, BENCH_SCHEMA_VERSION, PHASE_NAMES,
};

/// A summary with the given median and CI half-width, sized well above
/// the gate's `min_time_ns` floor.
fn time(median: u64, half_width: u64) -> Summary {
    Summary {
        samples: 30,
        min: median.saturating_sub(2 * half_width),
        max: median + 2 * half_width,
        median,
        mad: half_width,
        ci_lo: median.saturating_sub(half_width),
        ci_hi: median + half_width,
        mean: median as f64,
        p50: median,
        p90: median + half_width,
        p99: median + 2 * half_width,
    }
}

fn alloc(allocs: u64, bytes: u64) -> AllocStats {
    AllocStats {
        allocs,
        bytes_total: bytes,
        peak_live_bytes: bytes,
    }
}

fn report(workloads: Vec<WorkloadReport>) -> BenchReport {
    BenchReport {
        schema_version: BENCH_SCHEMA_VERSION,
        label: "synthetic".to_string(),
        config: BenchConfig {
            iters: 30,
            warmup: 5,
            bootstrap: BootstrapConfig::default(),
            quick: false,
        },
        workloads,
        obs: Json::Obj(Vec::new()),
    }
}

fn workload(name: &str, phases: Vec<(&str, Summary, AllocStats)>) -> WorkloadReport {
    // The total is the component-wise sum of the phase summaries, so the
    // overlap structure the individual tests set up carries through to
    // the per-workload "total" comparison.
    let total_time = Summary {
        samples: 30,
        min: phases.iter().map(|(_, t, _)| t.min).sum(),
        max: phases.iter().map(|(_, t, _)| t.max).sum(),
        median: phases.iter().map(|(_, t, _)| t.median).sum(),
        mad: phases.iter().map(|(_, t, _)| t.mad).sum(),
        ci_lo: phases.iter().map(|(_, t, _)| t.ci_lo).sum(),
        ci_hi: phases.iter().map(|(_, t, _)| t.ci_hi).sum(),
        mean: phases.iter().map(|(_, t, _)| t.mean).sum(),
        p50: phases.iter().map(|(_, t, _)| t.p50).sum(),
        p90: phases.iter().map(|(_, t, _)| t.p90).sum(),
        p99: phases.iter().map(|(_, t, _)| t.p99).sum(),
    };
    let total_alloc = AllocStats {
        allocs: phases.iter().map(|(_, _, a)| a.allocs).sum(),
        bytes_total: phases.iter().map(|(_, _, a)| a.bytes_total).sum(),
        peak_live_bytes: phases.iter().map(|(_, _, a)| a.peak_live_bytes).max().unwrap_or(0),
    };
    WorkloadReport {
        name: name.to_string(),
        nodes: 64,
        edges: 96,
        phases: phases
            .into_iter()
            .map(|(n, t, a)| PhaseReport {
                name: n.to_string(),
                time: t,
                alloc: a,
            })
            .collect(),
        total_time,
        alloc_total: total_alloc,
        alloc_unattributed_bytes: 0,
    }
}

#[test]
fn identical_reports_pass() {
    let base = report(vec![workload(
        "w",
        vec![
            ("dominators", time(10_000, 500), alloc(200, 16_384)),
            ("pst", time(20_000, 800), alloc(400, 32_768)),
        ],
    )]);
    let cmp = compare(&base, &base.clone(), &GateConfig::default());
    assert!(cmp.passed(), "{}", cmp.render_text());
    assert_eq!(cmp.compared_workloads, 1);
    // Two phases plus the per-workload total.
    assert_eq!(cmp.compared_phases, 3);
    assert!(cmp.render_text().starts_with("regression gate: PASS"));
}

#[test]
fn overlapping_cis_suppress_a_beyond_threshold_ratio() {
    // +50% median growth, but the intervals overlap: noise, not a finding.
    let base = report(vec![workload(
        "w",
        vec![("dominators", time(10_000, 6_000), alloc(200, 16_384))],
    )]);
    let cand = report(vec![workload(
        "w",
        vec![("dominators", time(15_000, 6_000), alloc(200, 16_384))],
    )]);
    let cmp = compare(&base, &cand, &GateConfig::default());
    assert!(cmp.passed(), "{}", cmp.render_text());
}

#[test]
fn disjoint_cis_beyond_threshold_fail_the_gate() {
    let base = report(vec![workload(
        "w",
        vec![("dominators", time(10_000, 500), alloc(200, 16_384))],
    )]);
    let cand = report(vec![workload(
        "w",
        vec![("dominators", time(20_000, 500), alloc(200, 16_384))],
    )]);
    let cmp = compare(&base, &cand, &GateConfig::default());
    assert!(!cmp.passed());
    // The phase regressed (median and tail) and dragged the workload
    // total with it.
    let kinds: Vec<_> = cmp.findings.iter().map(|f| f.kind).collect();
    assert_eq!(
        kinds,
        vec![
            RegressionKind::Time,
            RegressionKind::Quantile,
            RegressionKind::Time,
            RegressionKind::Quantile,
        ]
    );
    let f = &cmp.findings[0];
    assert_eq!((f.workload.as_str(), f.phase.as_str()), ("w", "dominators"));
    assert_eq!((f.baseline, f.candidate), (10_000, 20_000));
    assert!((f.ratio - 2.0).abs() < 1e-9);
    assert!(cmp.render_text().contains("CIs disjoint"));
}

#[test]
fn sub_floor_phases_never_fail() {
    // A 10x blowup of a 40ns phase is below min_time_ns: exempt.
    let base = report(vec![workload(
        "w",
        vec![("parse", time(4, 1), alloc(2, 64))],
    )]);
    let cand = report(vec![workload(
        "w",
        vec![("parse", time(40, 1), alloc(20, 640))],
    )]);
    let cmp = compare(&base, &cand, &GateConfig::default());
    assert!(cmp.passed(), "{}", cmp.render_text());
}

#[test]
fn alloc_regressions_are_ratio_only() {
    // Time is identical; bytes and call counts both blow past +25%.
    let base = report(vec![workload(
        "w",
        vec![("ssa", time(10_000, 500), alloc(100, 8_192))],
    )]);
    let cand = report(vec![workload(
        "w",
        vec![("ssa", time(10_000, 500), alloc(400, 65_536))],
    )]);
    let cmp = compare(&base, &cand, &GateConfig::default());
    let kinds: Vec<_> = cmp.findings.iter().map(|f| f.kind).collect();
    assert!(kinds.contains(&RegressionKind::AllocBytes), "{kinds:?}");
    assert!(kinds.contains(&RegressionKind::AllocCount), "{kinds:?}");
    assert!(!kinds.contains(&RegressionKind::Time), "{kinds:?}");
}

#[test]
fn missing_workloads_and_phases_are_findings() {
    let base = report(vec![
        workload("gone", vec![("pst", time(10_000, 500), alloc(200, 16_384))]),
        // The extra phase is tiny so the "kept" totals stay within the
        // gate thresholds in the reverse comparison below.
        workload(
            "kept",
            vec![
                ("pst", time(10_000, 500), alloc(200, 16_384)),
                ("renamed", time(100, 50), alloc(4, 64)),
            ],
        ),
    ]);
    let cand = report(vec![workload(
        "kept",
        vec![("pst", time(10_000, 500), alloc(200, 16_384))],
    )]);
    let cmp = compare(&base, &cand, &GateConfig::default());
    let missing: Vec<_> = cmp
        .findings
        .iter()
        .filter(|f| f.kind == RegressionKind::Missing)
        .map(|f| (f.workload.as_str(), f.phase.as_str()))
        .collect();
    assert_eq!(missing, vec![("gone", "total"), ("kept", "renamed")]);

    // Extra candidate workloads are a grown matrix, not a regression.
    let cmp = compare(&cand, &base, &GateConfig::default());
    assert!(cmp.passed(), "{}", cmp.render_text());
}

/// Builds a pseudo-random but schema-consistent report from a seed.
fn arbitrary_report(seed: u64) -> BenchReport {
    let mut rng = SplitMix64::new(seed);
    let summary = |rng: &mut SplitMix64| {
        let median = 1_000 + rng.below(1_000_000);
        let spread = rng.below(median / 2 + 1);
        let max = median + spread + rng.below(1_000);
        let p90 = median + rng.below(spread + 1);
        Summary {
            samples: 1 + rng.below(64),
            min: median - spread,
            max,
            median,
            mad: rng.below(spread + 1),
            ci_lo: median - rng.below(spread + 1),
            ci_hi: median + rng.below(spread + 1),
            // Dyadic fractions survive the float -> text -> float trip
            // exactly, so equality below is not flaky.
            mean: median as f64 + rng.below(16) as f64 / 4.0,
            p50: median,
            p90,
            p99: p90 + rng.below(max - p90 + 1),
        }
    };
    let workloads = (0..1 + rng.below(3))
        .map(|w| {
            let phases = (0..1 + rng.below(PHASE_NAMES.len() as u64))
                .map(|p| PhaseReport {
                    name: PHASE_NAMES[p as usize].to_string(),
                    time: summary(&mut rng),
                    alloc: alloc(rng.below(100_000), rng.below(1 << 30)),
                })
                .collect();
            WorkloadReport {
                name: format!("workload_{w}"),
                nodes: rng.below(10_000),
                edges: rng.below(20_000),
                phases,
                total_time: summary(&mut rng),
                alloc_total: alloc(rng.below(1_000_000), rng.below(1 << 40)),
                alloc_unattributed_bytes: rng.below(1 << 20),
            }
        })
        .collect();
    BenchReport {
        schema_version: BENCH_SCHEMA_VERSION,
        label: format!("prop_{seed}"),
        config: BenchConfig {
            iters: 1 + rng.below(100),
            warmup: rng.below(10),
            bootstrap: BootstrapConfig {
                resamples: 1 + rng.below(500),
                seed: rng.next_u64(),
            },
            quick: rng.below(2) == 1,
        },
        workloads,
        obs: Json::obj([
            ("spans", Json::Arr(Vec::new())),
            (
                "counters",
                Json::obj([("bench_workloads_run", Json::UInt(rng.below(100)))]),
            ),
        ]),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// `BENCH_<label>.json` round-trips: struct -> JSON text -> struct is
    /// the identity, and the emitted JSON passes the schema validator.
    #[test]
    fn bench_report_roundtrips(seed in 0u64..10_000) {
        let original = arbitrary_report(seed);
        let json = original.to_json();
        BenchReport::validate(&json).expect("self-built report is schema-valid");
        let reparsed = BenchReport::parse(&json.to_string()).expect("text round-trip");
        assert_eq!(reparsed, original);
        // And the in-memory JSON path agrees with the text path.
        assert_eq!(BenchReport::from_json(&json).expect("json round-trip"), original);
    }

    /// A self-comparison of any well-formed report passes the gate.
    #[test]
    fn self_comparison_always_passes(seed in 0u64..10_000) {
        let r = arbitrary_report(seed);
        let cmp = compare(&r, &r.clone(), &GateConfig::default());
        assert!(cmp.passed(), "{}", cmp.render_text());
    }
}
