//! Allocation-attribution contract: per-phase snapshot deltas account
//! for every byte of an enclosing region, so `alloc_unattributed_bytes`
//! in a BENCH report is exact bookkeeping rather than an estimate.
//!
//! This file installs the counting allocator for its own test binary
//! and deliberately contains a SINGLE `#[test]` function: libtest runs
//! the tests of one binary on parallel threads, and a second test would
//! interleave its allocations into this one's process-global counters.

use std::hint::black_box;

use pst_perf::alloc::{delta, installed, reset_peak, snapshot};
use pst_perf::CountingAlloc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

#[test]
fn phase_deltas_sum_exactly_to_the_outer_delta() {
    assert!(
        installed(),
        "the #[global_allocator] above must be the counting allocator"
    );

    // Warm up the heap (thread-local caches, libtest buffers) so the
    // measured region below is purely our own allocations.
    black_box(vec![0u8; 4096]);

    // Pre-size the bookkeeping vector: its pushes happen between phase
    // snapshots, inside the outer region, and must not allocate there.
    let mut peaks = Vec::with_capacity(3);

    let outer_before = snapshot();
    let mut phase_allocs = 0u64;
    let mut phase_bytes = 0u64;

    // Three synthetic "phases" with very different profiles: one big
    // buffer, many small boxes, and a grow-then-shrink vector.
    for size in [64 * 1024usize, 0, 0] {
        reset_peak();
        let before = snapshot();
        match size {
            0 if peaks.len() == 1 => {
                let boxes: Vec<Box<u64>> = (0..100).map(Box::new).collect();
                black_box(&boxes);
            }
            0 => {
                let mut v: Vec<u64> = Vec::new();
                for i in 0..10_000u64 {
                    v.push(i);
                }
                v.truncate(4);
                v.shrink_to_fit();
                black_box(&v);
            }
            n => {
                black_box(vec![0u8; n]);
            }
        }
        let d = delta(&before, &snapshot());
        assert!(d.allocs > 0, "each phase allocates at least once");
        assert!(d.bytes > 0);
        assert!(
            d.peak_live_bytes >= 1,
            "peak proxy must see the phase's live memory"
        );
        phase_allocs += d.allocs;
        phase_bytes += d.bytes;
        peaks.push(d.peak_live_bytes);
    }

    let outer = delta(&outer_before, &snapshot());

    // The attribution identity the harness relies on: with nothing else
    // running on this thread, the phase deltas are a partition of the
    // outer region.
    assert_eq!(
        phase_bytes, outer.bytes,
        "phase bytes must sum exactly to the outer delta"
    );
    assert_eq!(
        phase_allocs, outer.allocs,
        "phase allocation counts must sum exactly to the outer delta"
    );

    // The big-buffer phase's peak dominates and is at least its size.
    assert!(peaks[0] >= 64 * 1024, "peaks: {peaks:?}");

    // And the end-to-end identity as the harness computes it: run a real
    // workload and check the report's own unattributed remainder.
    let spec = pst_perf::WorkloadSpec::RandomCfg {
        nodes: 64,
        extra_edges: 16,
        seed: 0xC0FFEE,
    };
    let workload = pst_perf::Workload {
        name: "attribution_check".to_string(),
        spec,
    };
    let config = pst_perf::HarnessConfig::quick();
    let report = pst_perf::run_workload(&workload, &config).expect("workload runs");
    let attributed: u64 = report.phases.iter().map(|p| p.alloc.bytes_total).sum();
    assert_eq!(
        attributed + report.alloc_unattributed_bytes,
        report.alloc_total.bytes_total,
        "report attribution identity"
    );
    assert!(report.alloc_total.bytes_total > 0);
    assert!(report.phases.iter().all(|p| p.alloc.allocs > 0));
}
