//! Statistics-module contracts: seeded-bootstrap determinism, and
//! median/MAD robustness on outlier fixtures (the reason the harness
//! reports order statistics instead of means).

use proptest::test_runner::ProptestConfig;
use proptest::{proptest, strategy::Strategy};
use pst_perf::stats::{mad, median};
use pst_perf::{BootstrapConfig, Summary};

#[test]
fn same_seed_means_identical_confidence_interval() {
    let samples: Vec<u64> = (0..40).map(|i| 10_000 + (i * 997) % 3_000).collect();
    let config = BootstrapConfig {
        resamples: 300,
        seed: 0xDEAD_BEEF,
    };
    let a = Summary::from_samples(&samples, &config);
    let b = Summary::from_samples(&samples, &config);
    assert_eq!(a, b, "bootstrap must be a pure function of (samples, config)");

    // A different seed resamples differently; the CI is allowed to move
    // but every summary stays internally consistent.
    let c = Summary::from_samples(
        &samples,
        &BootstrapConfig {
            resamples: 300,
            seed: 1,
        },
    );
    assert_eq!(a.median, c.median, "the median does not depend on the seed");
    assert!(c.ci_lo <= c.median && c.median <= c.ci_hi);
}

#[test]
fn median_and_mad_shrug_off_outliers() {
    // A scheduler hiccup turns one sample into a 100x outlier: the mean
    // moves by ~2x, the median and MAD do not move at all.
    let clean: Vec<u64> = vec![100, 101, 99, 100, 102, 98, 100];
    let mut dirty = clean.clone();
    dirty[3] = 10_000;

    assert_eq!(median(&clean), 100);
    assert_eq!(median(&dirty), 100);
    assert_eq!(mad(&clean), 1);
    assert_eq!(mad(&dirty), 1);

    let config = BootstrapConfig::default();
    let s_clean = Summary::from_samples(&clean, &config);
    let s_dirty = Summary::from_samples(&dirty, &config);
    assert_eq!(s_clean.median, s_dirty.median);
    assert!(
        s_dirty.mean > 2.0 * s_clean.mean,
        "the mean is the statistic the outlier wrecks ({} vs {})",
        s_dirty.mean,
        s_clean.mean
    );
}

#[test]
fn mad_measures_spread_not_location() {
    // Same spread at a different location: identical MAD.
    let low: Vec<u64> = vec![10, 20, 30, 40, 50];
    let high: Vec<u64> = low.iter().map(|x| x + 1_000_000).collect();
    assert_eq!(mad(&low), mad(&high));
    assert_eq!(mad(&low), 10);
}

#[test]
fn single_sample_degenerates_cleanly() {
    let s = Summary::from_samples(&[42], &BootstrapConfig::default());
    assert_eq!(
        (s.min, s.median, s.max, s.ci_lo, s.ci_hi, s.mad),
        (42, 42, 42, 42, 42, 0)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Order-statistic invariants hold for arbitrary sample vectors.
    #[test]
    fn summary_invariants(samples in proptest::collection::vec(0u64..1_000_000, 1..64)) {
        let s = Summary::from_samples(&samples, &BootstrapConfig::default());
        assert_eq!(s.samples as usize, samples.len());
        assert!(s.min <= s.ci_lo, "{s:?}");
        assert!(s.ci_lo <= s.median && s.median <= s.ci_hi, "{s:?}");
        assert!(s.ci_hi <= s.max, "{s:?}");
        assert!(s.min as f64 <= s.mean && s.mean <= s.max as f64, "{s:?}");
        // The CI brackets the point estimate of the unsampled data too.
        assert_eq!(s.median, median(&samples));
    }

    /// `ci_overlaps` is symmetric and reflexive.
    #[test]
    fn overlap_is_symmetric(a in (0u64..1000).prop_map(|x| (x, x + 10)),
                            b in (0u64..1000).prop_map(|x| (x, x + 10))) {
        let mk = |(lo, hi): (u64, u64)| {
            let mut s = Summary::from_samples(&[lo, hi], &BootstrapConfig::default());
            s.ci_lo = lo;
            s.ci_hi = hi;
            s
        };
        let (sa, sb) = (mk(a), mk(b));
        assert!(sa.ci_overlaps(&sa));
        assert_eq!(sa.ci_overlaps(&sb), sb.ci_overlaps(&sa));
    }
}
