//! Performance observatory for the PST pipeline.
//!
//! The paper's headline claim is *linear time* (Figure 4's
//! cycle-equivalence pass, the O(E) control-region construction of
//! Theorems 7–8). `pst-obs` made a single run observable; this crate
//! makes runs **comparable**: a deterministic, zero-dependency,
//! in-process benchmark harness behind `pst bench` that
//!
//! 1. times each pipeline phase (parse → canonicalize → dominators →
//!    cycle-equiv → PST → control regions → SSA → dataflow) over a named
//!    [workload matrix](workload::standard_matrix),
//! 2. computes robust statistics offline — median, MAD, and a
//!    seeded-bootstrap confidence interval ([`stats::Summary`]), with no
//!    criterion machinery in the hot loop,
//! 3. tracks memory through a [counting global
//!    allocator](alloc::CountingAlloc) (bytes, allocation count, peak
//!    live bytes per phase),
//! 4. writes versioned `BENCH_<label>.json` reports whose schema embeds
//!    the `pst-obs` span tree and counters ([`report::BenchReport`]),
//! 5. gates regressions against a committed baseline
//!    ([`compare::compare`]; `pst bench --compare` exits with code 6),
//!    and
//! 6. exports the span tree as Chrome `trace_event` JSON loadable in
//!    `about:tracing` / Perfetto ([`trace::chrome_trace`]).
//!
//! See `docs/BENCHMARKING.md` for the JSON schema, the baseline
//! workflow, and the regression-gate semantics.

#![warn(missing_docs)]

pub mod alloc;
pub mod compare;
pub mod harness;
pub mod report;
pub mod stats;
pub mod trace;
pub mod workload;

pub use alloc::CountingAlloc;
pub use compare::{compare, Comparison, Finding, GateConfig, RegressionKind};
pub use harness::{run_matrix, run_workload, HarnessConfig, HarnessError, PHASE_NAMES};
pub use report::{
    fmt_ns, AllocStats, BenchConfig, BenchReport, PhaseReport, SchemaError, WorkloadReport,
    BENCH_SCHEMA_VERSION,
};
pub use stats::{BootstrapConfig, SplitMix64, Summary};
pub use trace::{chrome_trace, validate_chrome_trace};
pub use workload::{standard_matrix, Workload, WorkloadSpec};
