//! The regression gate behind `pst bench --compare` (exit code 6).
//!
//! Baseline and candidate [`BenchReport`]s are matched workload-by-name
//! and phase-by-name. A **time** regression requires *both* a median
//! ratio beyond the threshold *and* disjoint bootstrap confidence
//! intervals — overlap means the difference is within measurement
//! noise, so the gate stays quiet. A **quantile** regression applies
//! the same rule to the histogram-derived p99, catching tail blowups
//! that leave the median untouched. An **allocation** regression is
//! ratio-only (allocation counts are deterministic, so no interval is
//! needed). Tiny absolute values are exempt via floors: a 2× blowup of
//! a 100 ns phase is jitter, not a finding.

use std::fmt::Write as _;

use crate::report::{fmt_ns, AllocStats, BenchReport};
use crate::stats::Summary;

/// Thresholds and floors for [`compare`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GateConfig {
    /// Allowed fractional median-time growth (0.10 = +10%).
    pub time_ratio: f64,
    /// Allowed fractional allocation growth (bytes and calls).
    pub alloc_ratio: f64,
    /// Candidate medians below this many nanoseconds never fail.
    pub min_time_ns: u64,
    /// Candidate byte totals below this never fail.
    pub min_bytes: u64,
    /// Candidate allocation counts below this never fail.
    pub min_allocs: u64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            time_ratio: 0.10,
            alloc_ratio: 0.25,
            min_time_ns: 500,
            min_bytes: 4096,
            min_allocs: 64,
        }
    }
}

/// What kind of regression a [`Finding`] reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegressionKind {
    /// Median wall time grew beyond threshold with disjoint CIs.
    Time,
    /// Tail latency (p99) grew beyond threshold with disjoint CIs —
    /// catches regressions that widen the distribution without moving
    /// its center (e.g. an occasional reallocation storm).
    Quantile,
    /// Total bytes allocated grew beyond threshold.
    AllocBytes,
    /// Allocation calls grew beyond threshold.
    AllocCount,
    /// A baseline workload or phase is absent from the candidate, so
    /// its cost can no longer be compared.
    Missing,
}

impl RegressionKind {
    fn label(self) -> &'static str {
        match self {
            RegressionKind::Time => "time",
            RegressionKind::Quantile => "p99",
            RegressionKind::AllocBytes => "alloc-bytes",
            RegressionKind::AllocCount => "alloc-count",
            RegressionKind::Missing => "missing",
        }
    }
}

/// One gate violation.
#[derive(Clone, Debug, PartialEq)]
pub struct Finding {
    /// Workload name.
    pub workload: String,
    /// Phase name, or `"total"` for the whole-workload aggregate.
    pub phase: String,
    /// What regressed.
    pub kind: RegressionKind,
    /// Baseline value (ns or bytes or calls, per `kind`).
    pub baseline: u64,
    /// Candidate value.
    pub candidate: u64,
    /// `candidate / baseline` (baseline clamped to ≥ 1).
    pub ratio: f64,
}

/// The outcome of a baseline/candidate comparison.
#[derive(Clone, Debug, PartialEq)]
pub struct Comparison {
    /// Gate violations, in baseline order.
    pub findings: Vec<Finding>,
    /// Workloads matched by name and compared.
    pub compared_workloads: u64,
    /// Phases compared across those workloads (including totals).
    pub compared_phases: u64,
}

impl Comparison {
    /// Whether the gate passes (no findings).
    pub fn passed(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable verdict (what `pst bench --compare` prints).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if self.passed() {
            let _ = writeln!(
                out,
                "regression gate: PASS ({} workloads, {} phase comparisons)",
                self.compared_workloads, self.compared_phases
            );
            return out;
        }
        let _ = writeln!(
            out,
            "regression gate: FAIL — {} finding(s) over {} workloads, {} phase comparisons",
            self.findings.len(),
            self.compared_workloads,
            self.compared_phases
        );
        for f in &self.findings {
            let rendered = match f.kind {
                RegressionKind::Time => format!(
                    "{} -> {} ({:.2}x, CIs disjoint)",
                    fmt_ns(f.baseline),
                    fmt_ns(f.candidate),
                    f.ratio
                ),
                RegressionKind::Quantile => format!(
                    "p99 {} -> {} ({:.2}x, CIs disjoint)",
                    fmt_ns(f.baseline),
                    fmt_ns(f.candidate),
                    f.ratio
                ),
                RegressionKind::AllocBytes => {
                    format!("{} -> {} bytes ({:.2}x)", f.baseline, f.candidate, f.ratio)
                }
                RegressionKind::AllocCount => {
                    format!("{} -> {} allocs ({:.2}x)", f.baseline, f.candidate, f.ratio)
                }
                RegressionKind::Missing => "present in baseline, absent in candidate".to_string(),
            };
            let _ = writeln!(
                out,
                "  [{}] {} / {}: {}",
                f.kind.label(),
                f.workload,
                f.phase,
                rendered
            );
        }
        out
    }
}

fn ratio(baseline: u64, candidate: u64) -> f64 {
    candidate as f64 / baseline.max(1) as f64
}

fn check_time(
    findings: &mut Vec<Finding>,
    gate: &GateConfig,
    workload: &str,
    phase: &str,
    baseline: &Summary,
    candidate: &Summary,
) {
    let r = ratio(baseline.median, candidate.median);
    let beyond = r > 1.0 + gate.time_ratio;
    let significant = !baseline.ci_overlaps(candidate);
    if beyond && significant && candidate.median >= gate.min_time_ns {
        findings.push(Finding {
            workload: workload.to_string(),
            phase: phase.to_string(),
            kind: RegressionKind::Time,
            baseline: baseline.median,
            candidate: candidate.median,
            ratio: r,
        });
    }
    // Tail gate: p99 regressions use the same noise guards as medians —
    // the ratio threshold, the CI-disjointness requirement (the CI is
    // for the median, but overlapping CIs mean the distributions are
    // within noise of each other, so a p99 verdict would be noise too),
    // and the absolute floor.
    let rq = ratio(baseline.p99, candidate.p99);
    if rq > 1.0 + gate.time_ratio && significant && candidate.p99 >= gate.min_time_ns {
        findings.push(Finding {
            workload: workload.to_string(),
            phase: phase.to_string(),
            kind: RegressionKind::Quantile,
            baseline: baseline.p99,
            candidate: candidate.p99,
            ratio: rq,
        });
    }
}

fn check_alloc(
    findings: &mut Vec<Finding>,
    gate: &GateConfig,
    workload: &str,
    phase: &str,
    baseline: &AllocStats,
    candidate: &AllocStats,
) {
    let rb = ratio(baseline.bytes_total, candidate.bytes_total);
    if rb > 1.0 + gate.alloc_ratio && candidate.bytes_total >= gate.min_bytes {
        findings.push(Finding {
            workload: workload.to_string(),
            phase: phase.to_string(),
            kind: RegressionKind::AllocBytes,
            baseline: baseline.bytes_total,
            candidate: candidate.bytes_total,
            ratio: rb,
        });
    }
    let rc = ratio(baseline.allocs, candidate.allocs);
    if rc > 1.0 + gate.alloc_ratio && candidate.allocs >= gate.min_allocs {
        findings.push(Finding {
            workload: workload.to_string(),
            phase: phase.to_string(),
            kind: RegressionKind::AllocCount,
            baseline: baseline.allocs,
            candidate: candidate.allocs,
            ratio: rc,
        });
    }
}

/// Compares `candidate` against `baseline`. Every workload of the
/// baseline must be present in the candidate (extra candidate workloads
/// are ignored — a grown matrix is not a regression); within a matched
/// workload, every baseline phase must be present. Matched pairs are
/// checked for time and allocation regressions per [`GateConfig`].
pub fn compare(baseline: &BenchReport, candidate: &BenchReport, gate: &GateConfig) -> Comparison {
    let mut findings = Vec::new();
    let mut compared_workloads = 0u64;
    let mut compared_phases = 0u64;
    for bw in &baseline.workloads {
        let missing = |phase: &str| Finding {
            workload: bw.name.clone(),
            phase: phase.to_string(),
            kind: RegressionKind::Missing,
            baseline: 0,
            candidate: 0,
            ratio: 0.0,
        };
        let Some(cw) = candidate.workloads.iter().find(|w| w.name == bw.name) else {
            findings.push(missing("total"));
            continue;
        };
        compared_workloads += 1;
        for bp in &bw.phases {
            let Some(cp) = cw.phases.iter().find(|p| p.name == bp.name) else {
                findings.push(missing(&bp.name));
                continue;
            };
            compared_phases += 1;
            check_time(&mut findings, gate, &bw.name, &bp.name, &bp.time, &cp.time);
            check_alloc(&mut findings, gate, &bw.name, &bp.name, &bp.alloc, &cp.alloc);
        }
        compared_phases += 1;
        check_time(
            &mut findings,
            gate,
            &bw.name,
            "total",
            &bw.total_time,
            &cw.total_time,
        );
        check_alloc(
            &mut findings,
            gate,
            &bw.name,
            "total",
            &bw.alloc_total,
            &cw.alloc_total,
        );
    }
    Comparison {
        findings,
        compared_workloads,
        compared_phases,
    }
}
