//! Chrome `trace_event` export of the `pst-obs` span tree.
//!
//! [`chrome_trace`] turns an obs report (the JSON produced by
//! `pst_obs::Report::to_json`, or the `"obs"` field of a
//! `BENCH_<label>.json`) into the JSON Object Format of the Trace Event
//! specification: an object with a `traceEvents` array of `"X"`
//! (complete) events, loadable in `about:tracing` and Perfetto.
//!
//! The obs span tree is an *aggregate*: same-named siblings are merged,
//! `nanos` is the total over `count` entries, and `start_nanos` is the
//! offset of the *first* entry from the process-wide epoch. The export
//! therefore shows one bar per tree node — width = total time, placed
//! at first entry — rather than one bar per dynamic span. Children are
//! clamped into their parent's interval so the viewer's nesting stays
//! consistent even when a child's first entry predates a later parent
//! re-entry.

use pst_obs::json::Json;

use crate::report::SchemaError;

fn err(path: &str, message: impl Into<String>) -> SchemaError {
    SchemaError {
        path: path.to_string(),
        message: message.into(),
    }
}

fn span_u64(node: &Json, key: &str, path: &str) -> Result<u64, SchemaError> {
    node.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| err(&format!("{path}.{key}"), "missing unsigned integer"))
}

fn micros(nanos: u64) -> Json {
    Json::Float(nanos as f64 / 1_000.0)
}

fn emit_span(
    node: &Json,
    parent: Option<(u64, u64)>,
    depth: usize,
    events: &mut Vec<Json>,
    path: &str,
) -> Result<(), SchemaError> {
    let name = match node.get("name") {
        Some(Json::Str(s)) => s.clone(),
        _ => return Err(err(&format!("{path}.name"), "missing span name")),
    };
    let count = span_u64(node, "count", path)?;
    let nanos = span_u64(node, "nanos", path)?;
    let start_nanos = span_u64(node, "start_nanos", path)?;

    let (mut start, mut end) = (start_nanos, start_nanos.saturating_add(nanos));
    if let Some((ps, pe)) = parent {
        start = start.clamp(ps, pe);
        end = end.clamp(start, pe);
    }
    events.push(Json::obj([
        ("name", Json::Str(name)),
        ("ph", Json::Str("X".to_string())),
        ("ts", micros(start)),
        ("dur", micros(end - start)),
        ("pid", Json::UInt(1)),
        ("tid", Json::UInt(1)),
        (
            "args",
            Json::obj([
                ("count", Json::UInt(count)),
                ("total_nanos", Json::UInt(nanos)),
                ("depth", Json::UInt(depth as u64)),
            ]),
        ),
    ]));

    if let Some(Json::Arr(children)) = node.get("children") {
        for (i, child) in children.iter().enumerate() {
            emit_span(
                child,
                Some((start, end)),
                depth + 1,
                events,
                &format!("{path}.children[{i}]"),
            )?;
        }
    }
    Ok(())
}

/// Converts an obs report (JSON shape of `pst_obs::Report::to_json`)
/// into a Chrome trace document. Counters and gauges ride along under
/// `otherData`, where trace viewers show them as metadata.
pub fn chrome_trace(obs: &Json) -> Result<Json, SchemaError> {
    let mut events = Vec::new();
    match obs.get("spans") {
        Some(Json::Arr(spans)) => {
            for (i, span) in spans.iter().enumerate() {
                emit_span(span, None, 0, &mut events, &format!("$.spans[{i}]"))?;
            }
        }
        Some(_) => return Err(err("$.spans", "expected an array")),
        None => return Err(err("$.spans", "missing field (is this an obs report?)")),
    }
    let mut other = Vec::new();
    for key in ["counters", "gauges"] {
        if let Some(Json::Obj(entries)) = obs.get(key) {
            for (name, value) in entries {
                other.push((format!("{key}.{name}"), value.clone()));
            }
        }
    }
    Ok(Json::obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::Str("ms".to_string())),
        (
            "otherData",
            Json::Obj(other),
        ),
    ]))
}

fn event_micros(event: &Json, key: &str, path: &str) -> Result<f64, SchemaError> {
    match event.get(key) {
        Some(Json::Float(x)) => Ok(*x),
        Some(Json::UInt(u)) => Ok(*u as f64),
        Some(Json::Int(i)) if *i >= 0 => Ok(*i as f64),
        _ => Err(err(
            &format!("{path}.{key}"),
            "expected a non-negative number",
        )),
    }
}

/// Validates a Chrome trace document structurally: a `traceEvents`
/// array whose members are well-formed `"X"` events with non-negative
/// microsecond timestamps. This is the check `pst bench --trace-out`
/// runs on its own output before writing it.
pub fn validate_chrome_trace(trace: &Json) -> Result<(), SchemaError> {
    let events = match trace.get("traceEvents") {
        Some(Json::Arr(events)) => events,
        Some(_) => return Err(err("$.traceEvents", "expected an array")),
        None => return Err(err("$.traceEvents", "missing field")),
    };
    for (i, event) in events.iter().enumerate() {
        let path = format!("$.traceEvents[{i}]");
        match event.get("name") {
            Some(Json::Str(s)) if !s.is_empty() => {}
            _ => return Err(err(&format!("{path}.name"), "expected a non-empty string")),
        }
        match event.get("ph") {
            Some(Json::Str(ph)) if ph == "X" => {}
            _ => return Err(err(&format!("{path}.ph"), "expected \"X\" (complete event)")),
        }
        let ts = event_micros(event, "ts", &path)?;
        let dur = event_micros(event, "dur", &path)?;
        if ts < 0.0 || dur < 0.0 {
            return Err(err(&path, "negative timestamp"));
        }
        for key in ["pid", "tid"] {
            if event.get(key).and_then(Json::as_u64).is_none() {
                return Err(err(&format!("{path}.{key}"), "missing unsigned integer"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, start: u64, nanos: u64, children: Vec<Json>) -> Json {
        Json::obj([
            ("name", Json::Str(name.to_string())),
            ("count", Json::UInt(1)),
            ("nanos", Json::UInt(nanos)),
            ("start_nanos", Json::UInt(start)),
            ("children", Json::Arr(children)),
        ])
    }

    fn report(spans: Vec<Json>) -> Json {
        Json::obj([
            ("spans", Json::Arr(spans)),
            (
                "counters",
                Json::Obj(vec![("ticks".to_string(), Json::UInt(7))]),
            ),
            ("gauges", Json::Obj(vec![])),
        ])
    }

    #[test]
    fn exports_one_event_per_node_and_validates() {
        let obs = report(vec![span(
            "pipeline",
            0,
            1_000_000,
            vec![span("pst", 100_000, 400_000, vec![])],
        )]);
        let trace = chrome_trace(&obs).unwrap();
        validate_chrome_trace(&trace).unwrap();
        let Some(Json::Arr(events)) = trace.get("traceEvents") else {
            panic!("no events");
        };
        assert_eq!(events.len(), 2);
        assert_eq!(
            trace.get("otherData").and_then(|o| o.get("counters.ticks")),
            Some(&Json::UInt(7))
        );
    }

    #[test]
    fn children_are_clamped_into_the_parent_interval() {
        // Child claims to run past its parent's end (possible in the
        // merged aggregate); the export must keep it nested.
        let obs = report(vec![span(
            "parent",
            1_000,
            2_000,
            vec![span("child", 2_500, 10_000, vec![])],
        )]);
        let trace = chrome_trace(&obs).unwrap();
        validate_chrome_trace(&trace).unwrap();
        let Some(Json::Arr(events)) = trace.get("traceEvents") else {
            panic!("no events");
        };
        let child = &events[1];
        let ts = match child.get("ts") {
            Some(Json::Float(x)) => *x,
            other => panic!("bad ts: {other:?}"),
        };
        let dur = match child.get("dur") {
            Some(Json::Float(x)) => *x,
            other => panic!("bad dur: {other:?}"),
        };
        // Parent spans [1.0µs, 3.0µs]; the child must fit inside.
        assert!(ts >= 1.0 && ts + dur <= 3.0, "ts={ts} dur={dur}");
    }

    #[test]
    fn rejects_non_reports_with_a_path() {
        let e = chrome_trace(&Json::Obj(Vec::new())).unwrap_err();
        assert_eq!(e.path, "$.spans");
        let bad = Json::obj([("traceEvents", Json::UInt(3))]);
        assert!(validate_chrome_trace(&bad).is_err());
    }
}
