//! The measurement loop: run the pipeline over a workload, attribute
//! wall time and allocations to phases.
//!
//! One pipeline body (`run_pipeline`) serves both measurements
//! through a sink abstraction: the timing pass wraps each phase in
//! [`std::time::Instant`] reads, the allocation pass in
//! [`alloc::snapshot`] differences. Because both passes execute the
//! *same* code path, the per-phase allocation attribution is checkable
//! against the whole-run totals (`tests/alloc_attribution.rs` asserts
//! phase deltas sum exactly to the outer delta for a single-threaded
//! run).
//!
//! Phase vocabulary (a workload reports the subset it exercises):
//! `parse`, `lower`, `canonicalize`, `dominators`, `cycle_equiv`,
//! `pst`, `control_regions`, `ssa`, `dataflow` — plus `cd_fow` /
//! `cd_cfs` / `cd_linear` / `ntscd` / `dod` for the
//! `controldep/strong*` family (classic control-region baselines
//! against the strong analyses), and `serve_cold` / `serve_hot` for
//! the in-process daemon workload, which measures the `pst serve`
//! request path instead of the one-shot pipeline.

use std::fmt;
use std::hint::black_box;
use std::time::Instant;

use pst_cfg::{canonicalize, CanonicalizeOptions, Cfg, Graph, NodeId};
use pst_controldep::{
    cfs_control_regions, fow_control_regions, linear_control_regions, Dod, Ntscd,
    DEFAULT_DOD_BUDGET,
};
use pst_core::{collapse_all, ControlRegions, CycleEquiv, ProgramStructureTree};
use pst_dataflow::{QpgContext, SingleVariableReachingDefs};
use pst_dominators::{dominator_tree, postdominator_tree};
use pst_lang::{
    lower_program, parse_program, pretty_function, LoweredFunction, VarId,
};
use pst_obs::json::Json;
use pst_serve::{ServeConfig, Session, SharedSession};
use pst_ssa::{place_phis_pst_unchecked, rename};
use pst_workloads::{
    generate_function, irreducible_mesh, random_cfg, random_digraph, DigraphConfig,
    ProgramGenConfig,
};

use crate::alloc::{self, AllocDelta};
use crate::report::{AllocStats, PhaseReport, WorkloadReport};
use crate::stats::{BootstrapConfig, Summary};
use crate::workload::{StrongCdShape, Workload, WorkloadSpec};

/// The canonical phase order; reports list phases in first-execution
/// order, which is a subsequence of this.
pub const PHASE_NAMES: [&str; 16] = [
    "parse",
    "lower",
    "canonicalize",
    "dominators",
    "cycle_equiv",
    "pst",
    "control_regions",
    "cd_fow",
    "cd_cfs",
    "cd_linear",
    "ntscd",
    "dod",
    "ssa",
    "dataflow",
    "serve_cold",
    "serve_hot",
];

/// The `pst-obs` histogram each phase's per-iteration latency lands in.
/// `histogram!` needs `&'static str` names, so the nine phase names map
/// through this fixed table.
pub fn phase_histogram_name(phase: &str) -> &'static str {
    match phase {
        "parse" => "phase_nanos_parse",
        "lower" => "phase_nanos_lower",
        "canonicalize" => "phase_nanos_canonicalize",
        "dominators" => "phase_nanos_dominators",
        "cycle_equiv" => "phase_nanos_cycle_equiv",
        "pst" => "phase_nanos_pst",
        "control_regions" => "phase_nanos_control_regions",
        "cd_fow" => "phase_nanos_cd_fow",
        "cd_cfs" => "phase_nanos_cd_cfs",
        "cd_linear" => "phase_nanos_cd_linear",
        "ntscd" => "phase_nanos_ntscd",
        "dod" => "phase_nanos_dod",
        "ssa" => "phase_nanos_ssa",
        "dataflow" => "phase_nanos_dataflow",
        "serve_cold" => "phase_nanos_serve_cold",
        "serve_hot" => "phase_nanos_serve_hot",
        _ => "phase_nanos_other",
    }
}

/// How many iterations to run and how to summarize them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HarnessConfig {
    /// Timed iterations per workload (at least 1 is always run).
    pub iters: u64,
    /// Discarded warm-up iterations per workload.
    pub warmup: u64,
    /// Bootstrap CI parameters.
    pub bootstrap: BootstrapConfig,
}

impl HarnessConfig {
    /// The `--quick` profile: enough samples for a sane median, fast
    /// enough for CI smoke tests.
    pub fn quick() -> HarnessConfig {
        HarnessConfig {
            iters: 10,
            warmup: 2,
            bootstrap: BootstrapConfig::default(),
        }
    }

    /// The default full profile.
    pub fn full() -> HarnessConfig {
        HarnessConfig {
            iters: 30,
            warmup: 5,
            bootstrap: BootstrapConfig::default(),
        }
    }
}

/// A workload could not be built or analyzed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HarnessError {
    /// What went wrong, prefixed with the workload name when known.
    pub message: String,
}

impl HarnessError {
    fn new(message: impl Into<String>) -> HarnessError {
        HarnessError {
            message: message.into(),
        }
    }
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bench harness: {}", self.message)
    }
}

impl std::error::Error for HarnessError {}

/// A sink observes each phase execution; the closure's return value
/// passes through untouched.
trait PhaseSink {
    fn phase<R>(&mut self, name: &'static str, f: impl FnOnce() -> R) -> R;
}

/// Accumulates nanoseconds per phase name (summed when a phase runs
/// more than once per iteration, e.g. once per function).
#[derive(Default)]
struct TimerSink {
    phases: Vec<(&'static str, u64)>,
}

impl PhaseSink for TimerSink {
    fn phase<R>(&mut self, name: &'static str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let result = f();
        let ns = start.elapsed().as_nanos() as u64;
        match self.phases.iter_mut().find(|(n, _)| *n == name) {
            Some((_, total)) => *total += ns,
            None => self.phases.push((name, ns)),
        }
        result
    }
}

/// Accumulates allocator deltas per phase name.
#[derive(Default)]
struct AllocSink {
    phases: Vec<(&'static str, AllocDelta)>,
}

impl AllocSink {
    fn get(&self, name: &str) -> AllocDelta {
        self.phases
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, d)| *d)
            .unwrap_or_default()
    }
}

impl PhaseSink for AllocSink {
    fn phase<R>(&mut self, name: &'static str, f: impl FnOnce() -> R) -> R {
        alloc::reset_peak();
        let before = alloc::snapshot();
        let result = f();
        let after = alloc::snapshot();
        let d = alloc::delta(&before, &after);
        match self.phases.iter_mut().find(|(n, _)| *n == name) {
            Some((_, total)) => {
                total.allocs += d.allocs;
                total.bytes += d.bytes;
                total.peak_live_bytes = total.peak_live_bytes.max(d.peak_live_bytes);
            }
            None => self.phases.push((name, d)),
        }
        result
    }
}

/// A workload's input, materialized once and reused every iteration so
/// generation cost never pollutes the samples.
enum PreparedInput {
    Source(String),
    Cfg(Cfg),
    Digraph(Graph, NodeId),
    /// A strong-control-dependence input: the valid CFG the classic
    /// baselines run on, plus the raw digraph the strong analyses run
    /// on (identical to `cfg.graph()` except for the terminal-SCC
    /// shape, where the raw graph keeps its inescapable cycles and the
    /// CFG is its canonicalized repair).
    StrongCd { cfg: Cfg, graph: Graph },
}

fn prepare(w: &Workload) -> Result<PreparedInput, HarnessError> {
    match &w.spec {
        WorkloadSpec::ServeMix { .. } | WorkloadSpec::ServeConc { .. } => Err(HarnessError::new(
            "serve workloads take the dedicated daemon path, not the pipeline",
        )),
        WorkloadSpec::MiniSource { source } => Ok(PreparedInput::Source(source.clone())),
        WorkloadSpec::GenProg { config, seed } => {
            let f = generate_function("bench", config, *seed);
            Ok(PreparedInput::Source(pretty_function(&f)))
        }
        WorkloadSpec::RandomCfg {
            nodes,
            extra_edges,
            seed,
        } => random_cfg(*nodes, *extra_edges, *seed)
            .map(PreparedInput::Cfg)
            .map_err(|e| HarnessError::new(format!("random_cfg: {e}"))),
        WorkloadSpec::RandomDigraph { config, seed } => {
            let (g, entry) = random_digraph(config, *seed);
            Ok(PreparedInput::Digraph(g, entry))
        }
        WorkloadSpec::StrongCd { shape, size, seed } => {
            let (cfg, graph) = match shape {
                StrongCdShape::Random => {
                    let cfg = random_cfg(*size, *size / 4, *seed)
                        .map_err(|e| HarnessError::new(format!("random_cfg: {e}")))?;
                    let graph = cfg.graph().clone();
                    (cfg, graph)
                }
                StrongCdShape::Irreducible => {
                    let cfg = irreducible_mesh(*size);
                    let graph = cfg.graph().clone();
                    (cfg, graph)
                }
                StrongCdShape::TerminalScc => {
                    let (g, entry) = random_digraph(
                        &DigraphConfig {
                            nodes: *size,
                            edges: *size + *size / 2,
                            force_entry_predecessor: false,
                            force_unreachable: false,
                            force_infinite_loop: true,
                            force_multiple_exits: true,
                            force_self_loop: true,
                        },
                        *seed,
                    );
                    // The baselines need a valid Definition-1 CFG;
                    // canonicalize once here (untimed) so iterations
                    // measure only the dependence analyses.
                    let canonical =
                        canonicalize(&g, entry, &CanonicalizeOptions::default())
                            .map_err(|e| {
                                HarnessError::new(format!("canonicalize: {e}"))
                            })?;
                    (canonical.cfg, g)
                }
            };
            Ok(PreparedInput::StrongCd { cfg, graph })
        }
    }
}

/// The CFG-level analysis phases shared by every input kind; returns
/// the PST for the SSA/dataflow phases.
fn analyze_cfg(cfg: &Cfg, sink: &mut impl PhaseSink) -> ProgramStructureTree {
    let doms = sink.phase("dominators", || {
        (
            dominator_tree(cfg.graph(), cfg.entry()),
            postdominator_tree(cfg),
        )
    });
    black_box(&doms);
    let ce = sink.phase("cycle_equiv", || {
        let (g, _extra) = cfg.to_strongly_connected();
        CycleEquiv::compute_unchecked(&g, cfg.entry())
    });
    black_box(&ce);
    let pst = sink.phase("pst", || ProgramStructureTree::build(cfg));
    let cr = sink.phase("control_regions", || ControlRegions::compute(cfg));
    black_box(&cr);
    pst
}

/// The SSA + sparse-dataflow phases (only run for lowered functions,
/// which carry variable information).
fn analyze_function(
    f: &LoweredFunction,
    pst: &ProgramStructureTree,
    sink: &mut impl PhaseSink,
) -> Result<(), HarnessError> {
    let ssa = sink.phase("ssa", || {
        let collapsed = collapse_all(&f.cfg, pst);
        let sparse = place_phis_pst_unchecked(f, pst, &collapsed);
        rename(f, &sparse.placement)
    })
    .map_err(|e| HarnessError::new(format!("ssa: {e}")))?;
    black_box(&ssa);
    sink.phase("dataflow", || -> Result<(), HarnessError> {
        let ctx = QpgContext::new(&f.cfg, pst)
            .map_err(|e| HarnessError::new(format!("qpg: {e}")))?;
        for v in 0..f.var_count() {
            let var = VarId::from_index(v);
            let problem = SingleVariableReachingDefs::new(f, var);
            let qpg = ctx
                .build_from_sites(problem.sites())
                .map_err(|e| HarnessError::new(format!("qpg build: {e}")))?;
            let solution = ctx
                .solve(&qpg, &problem)
                .map_err(|e| HarnessError::new(format!("qpg solve: {e}")))?;
            black_box(&solution);
        }
        Ok(())
    })
}

/// Runs the whole pipeline once over a prepared input; returns the
/// analyzed CFG size `(nodes, edges)` (summed over functions for
/// program inputs, canonical CFG for digraph inputs).
fn run_pipeline(input: &PreparedInput, sink: &mut impl PhaseSink) -> Result<(u64, u64), HarnessError> {
    match input {
        PreparedInput::Source(src) => {
            let program = sink
                .phase("parse", || parse_program(src))
                .map_err(|e| HarnessError::new(format!("parse: {e}")))?;
            let lowered = sink
                .phase("lower", || lower_program(&program))
                .map_err(|e| HarnessError::new(format!("lower: {e}")))?;
            let (mut nodes, mut edges) = (0u64, 0u64);
            for f in &lowered {
                nodes += f.cfg.node_count() as u64;
                edges += f.cfg.edge_count() as u64;
                let pst = analyze_cfg(&f.cfg, sink);
                analyze_function(f, &pst, sink)?;
            }
            Ok((nodes, edges))
        }
        PreparedInput::Cfg(cfg) => {
            let pst = analyze_cfg(cfg, sink);
            black_box(&pst);
            Ok((cfg.node_count() as u64, cfg.edge_count() as u64))
        }
        PreparedInput::StrongCd { cfg, graph } => {
            let fow = sink.phase("cd_fow", || fow_control_regions(cfg));
            black_box(&fow);
            let cfs = sink.phase("cd_cfs", || cfs_control_regions(cfg));
            black_box(&cfs);
            let lin = sink.phase("cd_linear", || linear_control_regions(cfg));
            black_box(&lin);
            let ntscd = sink.phase("ntscd", || Ntscd::compute(graph));
            black_box(&ntscd);
            let dod = sink.phase("dod", || Dod::compute_budgeted(graph, DEFAULT_DOD_BUDGET));
            black_box(&dod);
            Ok((graph.node_count() as u64, graph.edge_count() as u64))
        }
        PreparedInput::Digraph(graph, entry) => {
            let canonical = sink
                .phase("canonicalize", || {
                    canonicalize(graph, *entry, &CanonicalizeOptions::default())
                })
                .map_err(|e| HarnessError::new(format!("canonicalize: {e}")))?;
            let cfg = &canonical.cfg;
            let pst = analyze_cfg(cfg, sink);
            black_box(&pst);
            Ok((cfg.node_count() as u64, cfg.edge_count() as u64))
        }
    }
}

/// Measures one workload: `warmup` discarded runs, `iters` timed runs
/// (per-phase and total nanoseconds), then one dedicated allocation
/// pass with per-phase snapshot attribution.
pub fn run_workload(w: &Workload, config: &HarnessConfig) -> Result<WorkloadReport, HarnessError> {
    let _span = pst_obs::Span::enter("bench_workload");
    // Everything this workload records — counters, gauges, phase
    // histograms — is attributed to it as a unit, so the metrics report
    // carries a per-workload sub-report alongside the global aggregate.
    let _unit = pst_obs::UnitScope::enter(w.name.as_str());
    let in_workload = |e: HarnessError| HarnessError::new(format!("{}: {}", w.name, e.message));
    if let WorkloadSpec::ServeMix { units, seed } = &w.spec {
        return run_serve_workload(w, *units, *seed, config).map_err(in_workload);
    }
    if let WorkloadSpec::ServeConc {
        units,
        clients,
        seed,
    } = &w.spec
    {
        return run_serve_conc_workload(w, *units, *clients, *seed, config).map_err(in_workload);
    }
    let input = prepare(w).map_err(|e| HarnessError::new(format!("{}: {}", w.name, e.message)))?;

    for _ in 0..config.warmup {
        let mut t = TimerSink::default();
        run_pipeline(&input, &mut t).map_err(in_workload)?;
    }

    let iters = config.iters.max(1);
    let mut order: Vec<&'static str> = Vec::new();
    let mut samples: Vec<Vec<u64>> = Vec::new();
    let mut totals: Vec<u64> = Vec::with_capacity(iters as usize);
    let (mut nodes, mut edges) = (0u64, 0u64);
    for _ in 0..iters {
        let mut t = TimerSink::default();
        let (n, e) = run_pipeline(&input, &mut t).map_err(in_workload)?;
        nodes = n;
        edges = e;
        let mut total = 0u64;
        for (name, ns) in t.phases {
            total += ns;
            // Timed iterations only (warm-ups above never get here), so
            // the latency histograms describe the same samples the
            // Summary quantiles are computed from.
            pst_obs::histogram!(phase_histogram_name(name), ns);
            match order.iter().position(|&o| o == name) {
                Some(i) => samples[i].push(ns),
                None => {
                    order.push(name);
                    samples.push(vec![ns]);
                }
            }
        }
        pst_obs::histogram!("bench_iter_nanos", total);
        totals.push(total);
    }

    let mut asink = AllocSink::default();
    alloc::reset_peak();
    let before = alloc::snapshot();
    run_pipeline(&input, &mut asink).map_err(in_workload)?;
    let after = alloc::snapshot();
    let outer = alloc::delta(&before, &after);

    let mut attributed_bytes = 0u64;
    let mut phases = Vec::with_capacity(order.len());
    for (i, &name) in order.iter().enumerate() {
        let d = asink.get(name);
        attributed_bytes += d.bytes;
        phases.push(PhaseReport {
            name: name.to_string(),
            time: Summary::from_samples(&samples[i], &config.bootstrap),
            alloc: AllocStats {
                allocs: d.allocs,
                bytes_total: d.bytes,
                peak_live_bytes: d.peak_live_bytes,
            },
        });
    }

    pst_obs::counter!("bench_workloads_run");
    pst_obs::counter!("bench_iterations", iters);
    pst_obs::gauge!("bench_workload_nodes", nodes as usize);

    Ok(WorkloadReport {
        name: w.name.clone(),
        nodes,
        edges,
        phases,
        total_time: Summary::from_samples(&totals, &config.bootstrap),
        alloc_total: AllocStats {
            allocs: outer.allocs,
            bytes_total: outer.bytes,
            peak_live_bytes: outer.peak_live_bytes,
        },
        alloc_unattributed_bytes: outer.bytes.saturating_sub(attributed_bytes),
    })
}

/// The request mix one serve workload drives: a generated mini unit per
/// slot, each queried with two methods from a rotating schedule, so the
/// batch exercises unit registration, stage interning, and per-method
/// memo hits rather than a single code path.
fn prepare_serve_mix(units: usize, seed: u64) -> Result<(Vec<String>, u64, u64), HarnessError> {
    const METHODS: [&str; 4] = ["pst", "control_regions", "ssa", "lint"];
    let gen_config = ProgramGenConfig {
        target_stmts: 40,
        max_depth: 5,
        num_vars: 12,
        goto_prob: 0.05,
        loop_prob: 0.3,
    };
    let mut lines = Vec::with_capacity(units * 2);
    let (mut nodes, mut edges) = (0u64, 0u64);
    for i in 0..units {
        let f = generate_function("serve", &gen_config, seed.wrapping_add(i as u64));
        let source = pretty_function(&f);
        // The report's nodes/edges describe the registered units, same
        // as the pipeline workloads describe their analyzed CFGs.
        let program = parse_program(&source)
            .map_err(|e| HarnessError::new(format!("serve mix unit {i}: parse: {e}")))?;
        let lowered = lower_program(&program)
            .map_err(|e| HarnessError::new(format!("serve mix unit {i}: lower: {e}")))?;
        for lf in &lowered {
            nodes += lf.cfg.node_count() as u64;
            edges += lf.cfg.edge_count() as u64;
        }
        for (k, method) in [METHODS[i % 4], METHODS[(i + 2) % 4]].into_iter().enumerate() {
            lines.push(
                Json::obj([
                    ("id", Json::UInt((i * 2 + k) as u64)),
                    ("method", Json::Str(method.to_string())),
                    ("source", Json::Str(source.clone())),
                ])
                .to_string(),
            );
        }
    }
    Ok((lines, nodes, edges))
}

/// Measures the `pst serve` request path with an in-process daemon:
/// per timed iteration, a fresh session answers the whole request mix
/// twice — the cold batch registers every unit (cache misses, full
/// pipeline), the hot batch repeats the identical requests (memo hits).
/// `serve_cold` / `serve_hot` become ordinary gated phases, and the
/// request throughput lands in the `serve_requests_per_sec` gauge.
fn run_serve_workload(
    w: &Workload,
    units: usize,
    seed: u64,
    config: &HarnessConfig,
) -> Result<WorkloadReport, HarnessError> {
    let (lines, nodes, edges) = prepare_serve_mix(units, seed)?;

    // One validation pass: every reply in the mix must be ok (a broken
    // request means a broken workload, caught before any timing).
    {
        let mut session = Session::new(ServeConfig::default());
        for line in &lines {
            let reply = session.handle_line(line);
            let ok = Json::parse(&reply.line)
                .ok()
                .and_then(|j| j.get("ok").cloned())
                == Some(Json::Bool(true));
            if !ok {
                return Err(HarnessError::new(format!(
                    "serve mix request failed: {} -> {}",
                    line, reply.line
                )));
            }
        }
    }

    let drive = |session: &mut Session| {
        for line in &lines {
            black_box(session.handle_line(line));
        }
    };

    for _ in 0..config.warmup {
        let mut session = Session::new(ServeConfig::default());
        drive(&mut session);
        drive(&mut session);
    }

    let iters = config.iters.max(1);
    let mut cold_samples = Vec::with_capacity(iters as usize);
    let mut hot_samples = Vec::with_capacity(iters as usize);
    let mut totals = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let mut session = Session::new(ServeConfig::default());
        let start = Instant::now();
        drive(&mut session);
        let cold = start.elapsed().as_nanos() as u64;
        let start = Instant::now();
        drive(&mut session);
        let hot = start.elapsed().as_nanos() as u64;
        pst_obs::histogram!("phase_nanos_serve_cold", cold);
        pst_obs::histogram!("phase_nanos_serve_hot", hot);
        pst_obs::histogram!("bench_iter_nanos", cold + hot);
        cold_samples.push(cold);
        hot_samples.push(hot);
        totals.push(cold + hot);
    }

    // Dedicated allocation pass, same shape as the pipeline path: the
    // outer delta wraps both batches, so attributed + unattributed
    // equals the total exactly.
    let mut asink = AllocSink::default();
    alloc::reset_peak();
    let before = alloc::snapshot();
    let mut session = Session::new(ServeConfig::default());
    asink.phase("serve_cold", || drive(&mut session));
    asink.phase("serve_hot", || drive(&mut session));
    let after = alloc::snapshot();
    let outer = alloc::delta(&before, &after);
    drop(session);

    let requests = lines.len() as u64 * 2 * iters;
    let spent: u64 = totals.iter().sum();
    pst_obs::gauge!(
        "serve_requests_per_sec",
        (requests as f64 * 1e9 / spent.max(1) as f64) as u64
    );

    // Price the live-telemetry layer itself: the same hot batch through
    // a single-shard SharedSession with the windowed series on (default
    // window) vs off (`--metrics-window-ms 0`). The gauge is the on/off
    // throughput ratio in percent — ~100 means the per-request series
    // fold is lost in the noise. Only the full-matrix mix is wide
    // enough for a stable ratio, so the quick matrix skips it.
    if units >= 16 {
        let hot_nanos = |window_ms: u64| -> u64 {
            let shared = SharedSession::new(ServeConfig {
                workers: 1,
                metrics_window_ms: window_ms,
                ..ServeConfig::default()
            });
            for line in &lines {
                black_box(shared.handle_line(line));
            }
            let start = Instant::now();
            for line in &lines {
                black_box(shared.handle_line(line));
            }
            (start.elapsed().as_nanos() as u64).max(1)
        };
        let on = hot_nanos(1000);
        let off = hot_nanos(0);
        pst_obs::gauge!(
            "serve_telemetry_overhead",
            ((off as f64 / on as f64) * 100.0) as u64
        );
    }
    pst_obs::counter!("bench_workloads_run");
    pst_obs::counter!("bench_iterations", iters);
    pst_obs::gauge!("bench_workload_nodes", nodes as usize);

    let mut attributed_bytes = 0u64;
    let mut phases = Vec::with_capacity(2);
    for (name, samples) in [("serve_cold", &cold_samples), ("serve_hot", &hot_samples)] {
        let d = asink.get(name);
        attributed_bytes += d.bytes;
        phases.push(PhaseReport {
            name: name.to_string(),
            time: Summary::from_samples(samples, &config.bootstrap),
            alloc: AllocStats {
                allocs: d.allocs,
                bytes_total: d.bytes,
                peak_live_bytes: d.peak_live_bytes,
            },
        });
    }

    Ok(WorkloadReport {
        name: w.name.clone(),
        nodes,
        edges,
        phases,
        total_time: Summary::from_samples(&totals, &config.bootstrap),
        alloc_total: AllocStats {
            allocs: outer.allocs,
            bytes_total: outer.bytes,
            peak_live_bytes: outer.peak_live_bytes,
        },
        alloc_unattributed_bytes: outer.bytes.saturating_sub(attributed_bytes),
    })
}

/// Deterministic jitter source for the concurrent clients' retry
/// backoff (splitmix64, seeded from the workload seed so the retry
/// schedule is reproducible run to run).
fn jitter_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Drives one client's request sequence to completion, retrying
/// `overloaded` sheds with jittered exponential backoff. The shed
/// envelope's `retry_after_ms` hint is calibrated for network clients;
/// in-process the gate clears in microseconds, so the backoff starts at
/// ~20µs and doubles (±50% jitter) up to a 1ms cap — shed requests are
/// measured work, never lost work.
fn drive_conc_client(shared: &SharedSession, lines: &[&str], jitter_seed: u64) {
    let mut state = jitter_seed;
    for line in lines {
        let mut backoff_us = 20u64;
        loop {
            let reply = shared.handle_line(line);
            if !reply.line.contains("\"code\":\"overloaded\"") {
                black_box(&reply);
                break;
            }
            let jitter = jitter_next(&mut state) % backoff_us.max(1);
            std::thread::sleep(std::time::Duration::from_micros(backoff_us / 2 + jitter));
            backoff_us = (backoff_us * 2).min(1000);
        }
    }
}

/// Measures the *concurrent* `pst serve` request path: `clients` scoped
/// threads fire the same seeded request mix at one sharded
/// [`SharedSession`] whose admission gate is armed below the client
/// count, so overload shedding and the client-side retry loop are part
/// of the measured path rather than an untested branch. Each client
/// starts at a different offset in the mix (shards never convoy in
/// lockstep), and because the clients overlap, the daemon computes each
/// unit once and answers the rest from the shared memo cache — which is
/// why aggregate throughput beats the sequential mix even on one core.
/// Cold and hot batches mirror the sequential serve workload
/// (`serve_cold` / `serve_hot` phases); throughput lands in the
/// `serve_conc_requests_per_sec` gauge, which the verify script asserts
/// strictly exceeds the sequential `serve_requests_per_sec`.
fn run_serve_conc_workload(
    w: &Workload,
    units: usize,
    clients: usize,
    seed: u64,
    config: &HarnessConfig,
) -> Result<WorkloadReport, HarnessError> {
    let clients = clients.max(1);
    let (lines, nodes, edges) = prepare_serve_mix(units, seed)?;

    let daemon_config = || ServeConfig {
        workers: clients,
        // Gate below the client count so some requests are genuinely
        // shed under full concurrency and the backoff/retry path runs.
        max_inflight: clients.saturating_sub(1).max(1),
        ..ServeConfig::default()
    };

    // One sequential validation pass: with a single caller the gate
    // never sheds, so every reply in the mix must be ok.
    {
        let shared = SharedSession::new(daemon_config());
        for line in &lines {
            let reply = shared.handle_line(line);
            let ok = Json::parse(&reply.line)
                .ok()
                .and_then(|j| j.get("ok").cloned())
                == Some(Json::Bool(true));
            if !ok {
                return Err(HarnessError::new(format!(
                    "serve conc request failed: {} -> {}",
                    line, reply.line
                )));
            }
        }
    }

    // Per-client request orders: the same mix rotated to a staggered
    // starting offset, materialized once so rotation cost never lands
    // in the samples.
    let orders: Vec<Vec<&str>> = (0..clients)
        .map(|c| {
            let start = c * lines.len() / clients;
            lines[start..]
                .iter()
                .chain(&lines[..start])
                .map(String::as_str)
                .collect()
        })
        .collect();

    let drive_all = |shared: &SharedSession| {
        std::thread::scope(|scope| {
            for (c, order) in orders.iter().enumerate() {
                let jitter_seed = seed ^ ((c as u64 + 1) << 32);
                scope.spawn(move || drive_conc_client(shared, order, jitter_seed));
            }
        });
    };

    for _ in 0..config.warmup {
        let shared = SharedSession::new(daemon_config());
        drive_all(&shared);
        drive_all(&shared);
    }

    let iters = config.iters.max(1);
    let mut cold_samples = Vec::with_capacity(iters as usize);
    let mut hot_samples = Vec::with_capacity(iters as usize);
    let mut totals = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let shared = SharedSession::new(daemon_config());
        let start = Instant::now();
        drive_all(&shared);
        let cold = start.elapsed().as_nanos() as u64;
        let start = Instant::now();
        drive_all(&shared);
        let hot = start.elapsed().as_nanos() as u64;
        pst_obs::histogram!("phase_nanos_serve_cold", cold);
        pst_obs::histogram!("phase_nanos_serve_hot", hot);
        pst_obs::histogram!("bench_iter_nanos", cold + hot);
        cold_samples.push(cold);
        hot_samples.push(hot);
        totals.push(cold + hot);
    }

    // Dedicated allocation pass. The counting allocator's counters are
    // process-global atomics and every client joins before the closing
    // snapshot, so the totals are exact; the per-phase split is exact
    // too because nothing else allocates between the scope boundaries.
    let mut asink = AllocSink::default();
    alloc::reset_peak();
    let before = alloc::snapshot();
    let shared = SharedSession::new(daemon_config());
    asink.phase("serve_cold", || drive_all(&shared));
    asink.phase("serve_hot", || drive_all(&shared));
    let after = alloc::snapshot();
    let outer = alloc::delta(&before, &after);
    drop(shared);

    // Successful requests only: retries of shed requests are extra
    // daemon work the rate deliberately pays for, not extra credit.
    let requests = lines.len() as u64 * clients as u64 * 2 * iters;
    let spent: u64 = totals.iter().sum();
    pst_obs::gauge!(
        "serve_conc_requests_per_sec",
        (requests as f64 * 1e9 / spent.max(1) as f64) as u64
    );
    pst_obs::counter!("bench_workloads_run");
    pst_obs::counter!("bench_iterations", iters);
    pst_obs::gauge!("bench_workload_nodes", nodes as usize);

    let mut attributed_bytes = 0u64;
    let mut phases = Vec::with_capacity(2);
    for (name, samples) in [("serve_cold", &cold_samples), ("serve_hot", &hot_samples)] {
        let d = asink.get(name);
        attributed_bytes += d.bytes;
        phases.push(PhaseReport {
            name: name.to_string(),
            time: Summary::from_samples(samples, &config.bootstrap),
            alloc: AllocStats {
                allocs: d.allocs,
                bytes_total: d.bytes,
                peak_live_bytes: d.peak_live_bytes,
            },
        });
    }

    Ok(WorkloadReport {
        name: w.name.clone(),
        nodes,
        edges,
        phases,
        total_time: Summary::from_samples(&totals, &config.bootstrap),
        alloc_total: AllocStats {
            allocs: outer.allocs,
            bytes_total: outer.bytes,
            peak_live_bytes: outer.peak_live_bytes,
        },
        alloc_unattributed_bytes: outer.bytes.saturating_sub(attributed_bytes),
    })
}

/// Measures every workload in order, failing fast on the first error —
/// a broken workload means a broken matrix, not a partial report.
pub fn run_matrix(
    workloads: &[Workload],
    config: &HarnessConfig,
) -> Result<Vec<WorkloadReport>, HarnessError> {
    let _span = pst_obs::Span::enter("bench_matrix");
    workloads.iter().map(|w| run_workload(w, config)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::standard_matrix;

    fn tiny() -> HarnessConfig {
        HarnessConfig {
            iters: 2,
            warmup: 0,
            bootstrap: BootstrapConfig {
                resamples: 10,
                seed: 1,
            },
        }
    }

    #[test]
    fn cfg_workload_reports_analysis_phases() {
        let w = Workload {
            name: "random_cfg/64".into(),
            spec: WorkloadSpec::RandomCfg {
                nodes: 64,
                extra_edges: 16,
                seed: 0xC0FFEE,
            },
        };
        let r = run_workload(&w, &tiny()).unwrap();
        assert_eq!(r.nodes, 64);
        let names: Vec<&str> = r.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(
            names,
            ["dominators", "cycle_equiv", "pst", "control_regions"]
        );
        assert!(r.phases.iter().all(|p| p.time.samples == 2));
    }

    #[test]
    fn source_workload_runs_all_phases_in_pipeline_order() {
        let w = Workload::mini(
            "mini:tiny",
            "fn f(n) { x = 1; if (x < n) { x = x + 1; } else { x = 0; } return x; }",
        );
        let r = run_workload(&w, &tiny()).unwrap();
        let names: Vec<&str> = r.phases.iter().map(|p| p.name.as_str()).collect();
        // Every reported phase appears in canonical order.
        let positions: Vec<usize> = names
            .iter()
            .map(|n| PHASE_NAMES.iter().position(|p| p == n).unwrap())
            .collect();
        assert!(positions.windows(2).all(|w| w[0] < w[1]), "{names:?}");
        assert!(names.contains(&"parse") && names.contains(&"dataflow"));
    }

    #[test]
    fn digraph_workload_canonicalizes_first() {
        let matrix = standard_matrix(true);
        let w = matrix
            .iter()
            .find(|w| w.name.starts_with("digraph_messy"))
            .unwrap();
        let r = run_workload(w, &tiny()).unwrap();
        assert_eq!(r.phases[0].name, "canonicalize");
        // The canonical CFG may shrink (unreachable pruning) or grow
        // (synthetic entry/exit/latches); it just has to be non-trivial.
        assert!(r.nodes > 2, "canonical CFG is non-trivial");
    }

    #[test]
    fn strong_cd_workloads_report_the_dependence_phases() {
        for shape in [
            StrongCdShape::Random,
            StrongCdShape::Irreducible,
            StrongCdShape::TerminalScc,
        ] {
            let w = Workload {
                name: format!("controldep/test/{shape:?}"),
                spec: WorkloadSpec::StrongCd {
                    shape,
                    size: 24,
                    seed: 0x5CD,
                },
            };
            let r = run_workload(&w, &tiny()).unwrap();
            let names: Vec<&str> = r.phases.iter().map(|p| p.name.as_str()).collect();
            assert_eq!(
                names,
                ["cd_fow", "cd_cfs", "cd_linear", "ntscd", "dod"],
                "{shape:?}"
            );
            assert!(r.phases.iter().all(|p| p.time.samples == 2));
            assert!(r.nodes > 0 && r.edges > 0);
        }
    }

    #[test]
    fn serve_workload_reports_cold_and_hot_phases() {
        let w = Workload {
            name: "serve/mix3".into(),
            spec: WorkloadSpec::ServeMix {
                units: 3,
                seed: 0x5E12E,
            },
        };
        let r = run_workload(&w, &tiny()).unwrap();
        let names: Vec<&str> = r.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["serve_cold", "serve_hot"]);
        assert!(r.phases.iter().all(|p| p.time.samples == 2));
        assert!(r.nodes > 0 && r.edges > 0, "units contribute CFG sizes");
        // Both batches allocate, and the outer delta covers them both.
        assert!(r.alloc_total.bytes_total >= r.phases[0].alloc.bytes_total);
    }

    #[test]
    fn serve_conc_workload_answers_every_client_and_reports_phases() {
        let w = Workload {
            name: "serve/conc3".into(),
            spec: WorkloadSpec::ServeConc {
                units: 2,
                clients: 3,
                seed: 0x5E12E,
            },
        };
        let r = run_workload(&w, &tiny()).unwrap();
        let names: Vec<&str> = r.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["serve_cold", "serve_hot"]);
        assert!(r.phases.iter().all(|p| p.time.samples == 2));
        // Three disjoint client mixes each contribute CFG sizes.
        assert!(r.nodes > 0 && r.edges > 0, "units contribute CFG sizes");
        assert!(r.alloc_total.bytes_total >= r.phases[0].alloc.bytes_total);
    }

    #[test]
    fn serve_workload_is_not_a_pipeline_input() {
        let Err(err) = prepare(&Workload {
            name: "serve/mix1".into(),
            spec: WorkloadSpec::ServeMix { units: 1, seed: 0 },
        }) else {
            panic!("serve spec must be rejected by the pipeline preparer");
        };
        assert!(err.message.contains("daemon path"), "{}", err.message);
    }
}
