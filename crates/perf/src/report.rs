//! The versioned `BENCH_<label>.json` schema.
//!
//! One [`BenchReport`] is the unit of comparison for the regression
//! gate: it records the harness configuration (so the statistics are
//! reproducible), one [`WorkloadReport`] per workload with per-phase
//! [`Summary`] statistics and [`AllocStats`], and the whole `pst-obs`
//! report (span tree, counters, gauges) embedded verbatim under `"obs"`.
//! Serialization uses the hand-rolled `pst_obs::json` emitter/parser —
//! the schema round-trips exactly ([`BenchReport::from_json`] ∘
//! [`BenchReport::to_json`] is the identity; proptested in
//! `tests/compare_gate.rs`).

use std::fmt;

use pst_obs::json::Json;

use crate::stats::{BootstrapConfig, Summary};

/// Version stamp written to every report; [`BenchReport::from_json`]
/// rejects other versions.
///
/// History: v1 = PR 5 (medians/MAD/bootstrap CI + alloc stats); v2 adds
/// histogram-derived `p50`/`p90`/`p99` to every time [`Summary`] (the
/// tail statistics the `--compare` gate checks alongside medians).
pub const BENCH_SCHEMA_VERSION: u64 = 2;

/// Harness configuration embedded in the report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchConfig {
    /// Timed iterations per workload.
    pub iters: u64,
    /// Discarded warm-up iterations per workload.
    pub warmup: u64,
    /// Bootstrap resample count and seed (CI reproducibility).
    pub bootstrap: BootstrapConfig,
    /// Whether this was a `--quick` run (the workload matrices differ).
    pub quick: bool,
}

/// Allocation totals for one phase (or one whole workload).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Allocation calls.
    pub allocs: u64,
    /// Bytes requested.
    pub bytes_total: u64,
    /// Peak live bytes during the region (RSS proxy).
    pub peak_live_bytes: u64,
}

/// One pipeline phase of one workload.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseReport {
    /// Phase name (`parse`, `canonicalize`, `cycle_equiv`, …).
    pub name: String,
    /// Robust wall-time statistics over the timed iterations.
    pub time: Summary,
    /// Allocation counters from the dedicated attribution pass.
    pub alloc: AllocStats,
}

/// One workload's measurements.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadReport {
    /// Stable workload name (`random_cfg/256`, `mini:fig1`, …).
    pub name: String,
    /// CFG nodes analyzed (canonical CFG for digraph workloads; summed
    /// over functions for program workloads).
    pub nodes: u64,
    /// CFG edges analyzed.
    pub edges: u64,
    /// Per-phase statistics, in pipeline order.
    pub phases: Vec<PhaseReport>,
    /// Whole-pipeline wall time per iteration (sum of phases).
    pub total_time: Summary,
    /// Allocation counters around the whole pipeline run.
    pub alloc_total: AllocStats,
    /// Bytes allocated by the pipeline run outside any phase
    /// (`alloc_total.bytes_total − Σ phases`); kept explicit so phase
    /// attribution is checkable: attributed + unattributed = total.
    pub alloc_unattributed_bytes: u64,
}

/// A whole `BENCH_<label>.json` document.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchReport {
    /// Schema version ([`BENCH_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Report label (`seed`, `local`, a PR number, …).
    pub label: String,
    /// Harness configuration.
    pub config: BenchConfig,
    /// Per-workload measurements.
    pub workloads: Vec<WorkloadReport>,
    /// The embedded `pst-obs` report (span tree, counters, gauges) as
    /// emitted by `pst_obs::Report::to_json`; kept as raw JSON so the
    /// document round-trips byte-exactly.
    pub obs: Json,
}

/// Schema violation found while reading a report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchemaError {
    /// Dotted path to the offending field.
    pub path: String,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BENCH schema error at {}: {}", self.path, self.message)
    }
}

impl std::error::Error for SchemaError {}

fn err(path: &str, message: impl Into<String>) -> SchemaError {
    SchemaError {
        path: path.to_string(),
        message: message.into(),
    }
}

fn get<'j>(obj: &'j Json, key: &str, path: &str) -> Result<&'j Json, SchemaError> {
    obj.get(key)
        .ok_or_else(|| err(&format!("{path}.{key}"), "missing field"))
}

fn get_u64(obj: &Json, key: &str, path: &str) -> Result<u64, SchemaError> {
    get(obj, key, path)?
        .as_u64()
        .ok_or_else(|| err(&format!("{path}.{key}"), "expected an unsigned integer"))
}

fn get_f64(obj: &Json, key: &str, path: &str) -> Result<f64, SchemaError> {
    match get(obj, key, path)? {
        Json::Float(x) => Ok(*x),
        Json::Int(i) => Ok(*i as f64),
        Json::UInt(u) => Ok(*u as f64),
        _ => Err(err(&format!("{path}.{key}"), "expected a number")),
    }
}

fn get_str(obj: &Json, key: &str, path: &str) -> Result<String, SchemaError> {
    match get(obj, key, path)? {
        Json::Str(s) => Ok(s.clone()),
        _ => Err(err(&format!("{path}.{key}"), "expected a string")),
    }
}

fn get_bool(obj: &Json, key: &str, path: &str) -> Result<bool, SchemaError> {
    match get(obj, key, path)? {
        Json::Bool(b) => Ok(*b),
        _ => Err(err(&format!("{path}.{key}"), "expected a boolean")),
    }
}

fn get_arr<'j>(obj: &'j Json, key: &str, path: &str) -> Result<&'j [Json], SchemaError> {
    match get(obj, key, path)? {
        Json::Arr(items) => Ok(items),
        _ => Err(err(&format!("{path}.{key}"), "expected an array")),
    }
}

fn summary_to_json(s: &Summary) -> Json {
    Json::obj([
        ("samples", Json::UInt(s.samples)),
        ("min", Json::UInt(s.min)),
        ("max", Json::UInt(s.max)),
        ("median", Json::UInt(s.median)),
        ("mad", Json::UInt(s.mad)),
        ("ci_lo", Json::UInt(s.ci_lo)),
        ("ci_hi", Json::UInt(s.ci_hi)),
        ("mean", Json::Float(s.mean)),
        ("p50", Json::UInt(s.p50)),
        ("p90", Json::UInt(s.p90)),
        ("p99", Json::UInt(s.p99)),
    ])
}

fn summary_from_json(j: &Json, path: &str) -> Result<Summary, SchemaError> {
    let s = Summary {
        samples: get_u64(j, "samples", path)?,
        min: get_u64(j, "min", path)?,
        max: get_u64(j, "max", path)?,
        median: get_u64(j, "median", path)?,
        mad: get_u64(j, "mad", path)?,
        ci_lo: get_u64(j, "ci_lo", path)?,
        ci_hi: get_u64(j, "ci_hi", path)?,
        mean: get_f64(j, "mean", path)?,
        p50: get_u64(j, "p50", path)?,
        p90: get_u64(j, "p90", path)?,
        p99: get_u64(j, "p99", path)?,
    };
    if s.samples == 0 {
        return Err(err(&format!("{path}.samples"), "must be positive"));
    }
    if s.min > s.median || s.median > s.max || s.ci_lo > s.ci_hi {
        return Err(err(path, "inconsistent order statistics"));
    }
    if s.p50 > s.p90 || s.p90 > s.p99 || s.p99 > s.max || s.p50 < s.min {
        return Err(err(path, "inconsistent quantiles"));
    }
    Ok(s)
}

fn alloc_to_json(a: &AllocStats) -> Json {
    Json::obj([
        ("allocs", Json::UInt(a.allocs)),
        ("bytes_total", Json::UInt(a.bytes_total)),
        ("peak_live_bytes", Json::UInt(a.peak_live_bytes)),
    ])
}

fn alloc_from_json(j: &Json, path: &str) -> Result<AllocStats, SchemaError> {
    Ok(AllocStats {
        allocs: get_u64(j, "allocs", path)?,
        bytes_total: get_u64(j, "bytes_total", path)?,
        peak_live_bytes: get_u64(j, "peak_live_bytes", path)?,
    })
}

impl WorkloadReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.clone())),
            ("nodes", Json::UInt(self.nodes)),
            ("edges", Json::UInt(self.edges)),
            (
                "phases",
                Json::Arr(
                    self.phases
                        .iter()
                        .map(|p| {
                            Json::obj([
                                ("name", Json::Str(p.name.clone())),
                                ("time", summary_to_json(&p.time)),
                                ("alloc", alloc_to_json(&p.alloc)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("total_time", summary_to_json(&self.total_time)),
            ("alloc_total", alloc_to_json(&self.alloc_total)),
            (
                "alloc_unattributed_bytes",
                Json::UInt(self.alloc_unattributed_bytes),
            ),
        ])
    }

    fn from_json(j: &Json, path: &str) -> Result<WorkloadReport, SchemaError> {
        let mut phases = Vec::new();
        for (i, pj) in get_arr(j, "phases", path)?.iter().enumerate() {
            let ppath = format!("{path}.phases[{i}]");
            phases.push(PhaseReport {
                name: get_str(pj, "name", &ppath)?,
                time: summary_from_json(get(pj, "time", &ppath)?, &format!("{ppath}.time"))?,
                alloc: alloc_from_json(get(pj, "alloc", &ppath)?, &format!("{ppath}.alloc"))?,
            });
        }
        Ok(WorkloadReport {
            name: get_str(j, "name", path)?,
            nodes: get_u64(j, "nodes", path)?,
            edges: get_u64(j, "edges", path)?,
            phases,
            total_time: summary_from_json(
                get(j, "total_time", path)?,
                &format!("{path}.total_time"),
            )?,
            alloc_total: alloc_from_json(
                get(j, "alloc_total", path)?,
                &format!("{path}.alloc_total"),
            )?,
            alloc_unattributed_bytes: get_u64(j, "alloc_unattributed_bytes", path)?,
        })
    }
}

impl BenchReport {
    /// Serializes the whole report.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema_version", Json::UInt(self.schema_version)),
            ("label", Json::Str(self.label.clone())),
            (
                "config",
                Json::obj([
                    ("iters", Json::UInt(self.config.iters)),
                    ("warmup", Json::UInt(self.config.warmup)),
                    (
                        "bootstrap_resamples",
                        Json::UInt(self.config.bootstrap.resamples),
                    ),
                    ("bootstrap_seed", Json::UInt(self.config.bootstrap.seed)),
                    ("quick", Json::Bool(self.config.quick)),
                ]),
            ),
            (
                "workloads",
                Json::Arr(self.workloads.iter().map(WorkloadReport::to_json).collect()),
            ),
            ("obs", self.obs.clone()),
        ])
    }

    /// Reads a report back, validating the schema along the way.
    pub fn from_json(j: &Json) -> Result<BenchReport, SchemaError> {
        let version = get_u64(j, "schema_version", "$")?;
        if version != BENCH_SCHEMA_VERSION {
            return Err(err(
                "$.schema_version",
                format!("unsupported version {version} (this build reads {BENCH_SCHEMA_VERSION})"),
            ));
        }
        let cj = get(j, "config", "$")?;
        let config = BenchConfig {
            iters: get_u64(cj, "iters", "$.config")?,
            warmup: get_u64(cj, "warmup", "$.config")?,
            bootstrap: BootstrapConfig {
                resamples: get_u64(cj, "bootstrap_resamples", "$.config")?,
                seed: get_u64(cj, "bootstrap_seed", "$.config")?,
            },
            quick: get_bool(cj, "quick", "$.config")?,
        };
        let mut workloads = Vec::new();
        for (i, wj) in get_arr(j, "workloads", "$")?.iter().enumerate() {
            workloads.push(WorkloadReport::from_json(wj, &format!("$.workloads[{i}]"))?);
        }
        Ok(BenchReport {
            schema_version: version,
            label: get_str(j, "label", "$")?,
            config,
            workloads,
            obs: get(j, "obs", "$")?.clone(),
        })
    }

    /// Parses and validates a serialized report.
    pub fn parse(text: &str) -> Result<BenchReport, SchemaError> {
        let j = Json::parse(text).map_err(|e| err("$", e.to_string()))?;
        BenchReport::from_json(&j)
    }

    /// Validates a JSON document against the schema without keeping it.
    pub fn validate(j: &Json) -> Result<(), SchemaError> {
        BenchReport::from_json(j).map(|_| ())
    }

    /// Human-readable summary table (what `pst bench` prints).
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "bench `{}`: {} workloads, {} iters (+{} warmup), bootstrap {}x seed {}",
            self.label,
            self.workloads.len(),
            self.config.iters,
            self.config.warmup,
            self.config.bootstrap.resamples,
            self.config.bootstrap.seed,
        );
        for w in &self.workloads {
            let _ = writeln!(
                out,
                "\n{} ({} nodes, {} edges)  total median {}  [{} .. {}]",
                w.name,
                w.nodes,
                w.edges,
                fmt_ns(w.total_time.median),
                fmt_ns(w.total_time.ci_lo),
                fmt_ns(w.total_time.ci_hi),
            );
            let _ = writeln!(
                out,
                "  {:<16} {:>10} {:>9} {:>10} {:>10} {:>9} {:>9} {:>9} {:>10} {:>8}",
                "phase", "median", "mad", "ci_lo", "ci_hi", "p50", "p90", "p99", "bytes", "allocs"
            );
            for p in &w.phases {
                let _ = writeln!(
                    out,
                    "  {:<16} {:>10} {:>9} {:>10} {:>10} {:>9} {:>9} {:>9} {:>10} {:>8}",
                    p.name,
                    fmt_ns(p.time.median),
                    fmt_ns(p.time.mad),
                    fmt_ns(p.time.ci_lo),
                    fmt_ns(p.time.ci_hi),
                    fmt_ns(p.time.p50),
                    fmt_ns(p.time.p90),
                    fmt_ns(p.time.p99),
                    p.alloc.bytes_total,
                    p.alloc.allocs,
                );
            }
        }
        out
    }
}

/// Renders nanoseconds with an adaptive unit.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}
