//! The named workload matrix `pst bench` runs.
//!
//! A workload is a *name* plus a deterministic recipe for an input:
//! a mini-language source (the CLI adds `examples/*.mini`), a seeded
//! generated program ([`pst_workloads::generate_function`] rendered
//! through the pretty-printer so the parse phase is exercised too), a
//! seeded valid CFG ([`pst_workloads::random_cfg`]) at several sizes,
//! or a seeded arbitrary digraph ([`pst_workloads::random_digraph`])
//! that must pass through canonicalization first. Names are stable
//! across runs — the regression gate matches baseline and candidate
//! workloads by name.

use pst_workloads::{DigraphConfig, ProgramGenConfig};

/// How to build one workload's input.
#[derive(Clone, Debug)]
pub enum WorkloadSpec {
    /// A mini-language source program (runs the full pipeline:
    /// parse → lower → per-function phases).
    MiniSource {
        /// The program text.
        source: String,
    },
    /// A seeded generated program, pretty-printed to source so it takes
    /// the same full path as [`WorkloadSpec::MiniSource`].
    GenProg {
        /// Generator shape parameters.
        config: ProgramGenConfig,
        /// Generator seed.
        seed: u64,
    },
    /// A seeded valid CFG (no parse/lower/canonicalize phases).
    RandomCfg {
        /// Node count before edge insertion.
        nodes: usize,
        /// Extra non-tree edges.
        extra_edges: usize,
        /// Generator seed.
        seed: u64,
    },
    /// A seeded arbitrary digraph; the pipeline starts at the
    /// canonicalize phase.
    RandomDigraph {
        /// Digraph shape (including forced Definition-1 violations).
        config: DigraphConfig,
        /// Generator seed.
        seed: u64,
    },
    /// A seeded input for the strong-control-dependence family: the
    /// pipeline times the three classic control-region baselines
    /// (`cd_fow`, `cd_cfs`, `cd_linear`) on the valid CFG and the
    /// strong analyses (`ntscd`, `dod`) on the raw digraph, so the
    /// weak-vs-strong cost gap is a gated number per shape.
    StrongCd {
        /// Which graph family to stress.
        shape: StrongCdShape,
        /// Shape-specific size knob (node count, or mesh ring size).
        size: usize,
        /// Generator seed (ignored by the deterministic mesh shape).
        seed: u64,
    },
    /// An in-process `pst serve` daemon driven with a seeded NDJSON
    /// request mix: a cold batch registers every unit (all cache
    /// misses), a hot batch repeats the identical requests (all served
    /// from the session cache). Phases are `serve_cold` / `serve_hot`,
    /// so the compare gate turns both one-shot pipeline latency *and*
    /// cache-hit latency into gated numbers; the `serve_requests_per_sec`
    /// gauge lands in the report's embedded obs section.
    ServeMix {
        /// Number of generated mini-language units in the mix.
        units: usize,
        /// Generator seed (unit sources and method rotation).
        seed: u64,
    },
    /// An in-process *concurrent* `pst serve` daemon: `clients` scoped
    /// threads fire the same seeded request mix (staggered starting
    /// offsets, so shard access never convoys in lockstep) at one
    /// shared, sharded session with the admission gate armed below the
    /// client count — `overloaded` sheds are retried with deterministic
    /// jittered exponential backoff, measured rather than lost. Because
    /// clients overlap, the daemon computes each unit once and answers
    /// the rest from the shared memo cache, so aggregate requests/sec
    /// must beat the sequential mix even on a single core. Phases reuse
    /// `serve_cold` / `serve_hot`; the `serve_conc_requests_per_sec`
    /// gauge is asserted against the sequential mix by the verify
    /// script.
    ServeConc {
        /// Number of generated mini-language units in the shared mix
        /// (same recipe as [`WorkloadSpec::ServeMix`]).
        units: usize,
        /// Concurrent client threads.
        clients: usize,
        /// Generator seed (unit sources, method rotation, jitter).
        seed: u64,
    },
}

/// The graph families the `controldep/strong*` workloads sweep. Each
/// stresses a different cost regime of the strong analyses: random
/// valid CFGs are the common case, the irreducible mesh defeats
/// interval/structural shortcuts, and the terminal-SCC-heavy digraph
/// maximizes the nodes whose maximal paths never reach the exit —
/// exactly where NTSCD diverges from classic control dependence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StrongCdShape {
    /// A seeded valid random CFG ([`pst_workloads::random_cfg`]).
    Random,
    /// The deterministic multi-entry loop mesh
    /// ([`pst_workloads::irreducible_mesh`]).
    Irreducible,
    /// A seeded digraph with forced inescapable cycles
    /// ([`pst_workloads::random_digraph`] with `force_infinite_loop`);
    /// the classic baselines run on its canonicalized CFG, the strong
    /// analyses on the raw graph.
    TerminalScc,
}

/// A named benchmark input.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Stable name, used for matching in `--compare`.
    pub name: String,
    /// The input recipe.
    pub spec: WorkloadSpec,
}

impl Workload {
    /// A mini-source workload (the CLI uses this for `examples/*.mini`).
    pub fn mini(name: impl Into<String>, source: impl Into<String>) -> Workload {
        Workload {
            name: name.into(),
            spec: WorkloadSpec::MiniSource {
                source: source.into(),
            },
        }
    }
}

fn genprog(name: &str, target_stmts: usize, goto_prob: f64, seed: u64) -> Workload {
    Workload {
        name: name.to_string(),
        spec: WorkloadSpec::GenProg {
            config: ProgramGenConfig {
                target_stmts,
                max_depth: 6,
                num_vars: (4 + target_stmts / 3).min(90),
                goto_prob,
                loop_prob: 0.3,
            },
            seed,
        },
    }
}

fn random_cfg(nodes: usize, seed: u64) -> Workload {
    Workload {
        name: format!("random_cfg/{nodes}"),
        spec: WorkloadSpec::RandomCfg {
            nodes,
            // A constant edge surplus per node keeps density realistic
            // as the size sweep grows.
            extra_edges: nodes / 4,
            seed,
        },
    }
}

fn serve_mix(units: usize, seed: u64) -> Workload {
    Workload {
        name: format!("serve/mix{units}"),
        spec: WorkloadSpec::ServeMix { units, seed },
    }
}

fn serve_conc(units: usize, clients: usize, seed: u64) -> Workload {
    Workload {
        name: format!("serve/conc{clients}"),
        spec: WorkloadSpec::ServeConc {
            units,
            clients,
            seed,
        },
    }
}

fn strong_cd(shape: StrongCdShape, size: usize, seed: u64) -> Workload {
    let family = match shape {
        StrongCdShape::Random => "strong_random",
        StrongCdShape::Irreducible => "strong_irreducible",
        StrongCdShape::TerminalScc => "strong_sccheavy",
    };
    Workload {
        name: format!("controldep/{family}/{size}"),
        spec: WorkloadSpec::StrongCd { shape, size, seed },
    }
}

fn messy_digraph(nodes: usize, seed: u64) -> Workload {
    Workload {
        name: format!("digraph_messy/{nodes}"),
        spec: WorkloadSpec::RandomDigraph {
            config: DigraphConfig {
                nodes,
                edges: nodes + nodes / 2,
                force_entry_predecessor: true,
                force_unreachable: true,
                force_infinite_loop: true,
                force_multiple_exits: true,
                force_self_loop: true,
            },
            seed,
        },
    }
}

/// The generated half of the workload matrix (the CLI prepends
/// `examples/*.mini`). `quick` keeps `pst bench --quick` and the
/// verify-script smoke under a few seconds; the full matrix sweeps two
/// orders of magnitude of CFG size so scaling regressions surface.
pub fn standard_matrix(quick: bool) -> Vec<Workload> {
    let mut matrix = vec![
        random_cfg(64, 0xC0FFEE),
        random_cfg(256, 0xC0FFEE),
        genprog("genprog/structured", 150, 0.0, 0xBEEF),
        genprog("genprog/unstructured", 150, 0.15, 0xBEEF),
        messy_digraph(64, 0xD16),
        strong_cd(StrongCdShape::Random, 64, 0x5CD),
        strong_cd(StrongCdShape::Irreducible, 48, 0x5CD),
        strong_cd(StrongCdShape::TerminalScc, 64, 0x5CD),
        serve_mix(6, 0x5E12E),
        serve_conc(6, 8, 0x5E12E),
    ];
    if !quick {
        matrix.extend([
            random_cfg(1024, 0xC0FFEE),
            random_cfg(4096, 0xC0FFEE),
            genprog("genprog/large", 1500, 0.04, 0xBEEF),
            messy_digraph(512, 0xD16),
            strong_cd(StrongCdShape::Random, 256, 0x5CD),
            strong_cd(StrongCdShape::Irreducible, 96, 0x5CD),
            strong_cd(StrongCdShape::TerminalScc, 128, 0x5CD),
            serve_mix(16, 0x5E12E),
        ]);
    }
    matrix
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_names_are_unique_and_stable() {
        for quick in [true, false] {
            let m = standard_matrix(quick);
            let mut names: Vec<&str> = m.iter().map(|w| w.name.as_str()).collect();
            names.sort_unstable();
            let before = names.len();
            names.dedup();
            assert_eq!(before, names.len(), "duplicate workload names");
        }
        assert!(standard_matrix(false).len() > standard_matrix(true).len());
    }
}
