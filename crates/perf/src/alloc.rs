//! A counting global allocator: the harness's memory-measurement
//! substrate.
//!
//! [`CountingAlloc`] wraps [`std::alloc::System`] and maintains four
//! process-global relaxed atomics: allocation calls, bytes requested,
//! live bytes, and peak live bytes (a cheap RSS proxy). Binaries opt in
//! with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: pst_perf::CountingAlloc = pst_perf::CountingAlloc::new();
//! ```
//!
//! The `pst` CLI and the `experiments` binary install it; the overhead
//! is a handful of relaxed atomic operations per allocation, which is
//! why `pst bench` can afford to leave it on while timing.
//!
//! This is the only module in the workspace's own crates that needs
//! `unsafe` (the `GlobalAlloc` contract); the implementation only
//! forwards to `System` and updates counters.
//!
//! Per-phase attribution ([`harness`](crate::harness)) takes
//! [`snapshot`]s around each phase and differences them; that is exact
//! for the single-threaded harness loop and merely approximate if other
//! threads allocate concurrently.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static DEALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static BYTES_TOTAL: AtomicU64 = AtomicU64::new(0);
static BYTES_LIVE: AtomicU64 = AtomicU64::new(0);
static BYTES_PEAK: AtomicU64 = AtomicU64::new(0);

/// The counting allocator; a zero-sized forwarder to `System`.
pub struct CountingAlloc;

impl CountingAlloc {
    /// `const` constructor, usable in a `#[global_allocator]` static.
    pub const fn new() -> CountingAlloc {
        CountingAlloc
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        CountingAlloc::new()
    }
}

fn record_alloc(size: u64) {
    ALLOC_CALLS.fetch_add(1, Relaxed);
    BYTES_TOTAL.fetch_add(size, Relaxed);
    let live = BYTES_LIVE.fetch_add(size, Relaxed).wrapping_add(size);
    BYTES_PEAK.fetch_max(live, Relaxed);
}

fn record_dealloc(size: u64) {
    DEALLOC_CALLS.fetch_add(1, Relaxed);
    BYTES_LIVE.fetch_sub(size, Relaxed);
}

// SAFETY: every method forwards verbatim to `System`, which upholds the
// `GlobalAlloc` contract; the counter updates touch no allocator state.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            record_alloc(layout.size() as u64);
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            record_alloc(layout.size() as u64);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        record_dealloc(layout.size() as u64);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            record_dealloc(layout.size() as u64);
            record_alloc(new_size as u64);
        }
        new_ptr
    }
}

/// Point-in-time reading of the allocator counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Total allocation calls since process start.
    pub alloc_calls: u64,
    /// Total deallocation calls since process start.
    pub dealloc_calls: u64,
    /// Total bytes ever requested.
    pub bytes_total: u64,
    /// Bytes currently live.
    pub bytes_live: u64,
    /// Peak live bytes since process start or the last [`reset_peak`].
    pub bytes_peak: u64,
}

/// Reads the counters. All zeros when [`CountingAlloc`] is not the
/// process's global allocator.
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        alloc_calls: ALLOC_CALLS.load(Relaxed),
        dealloc_calls: DEALLOC_CALLS.load(Relaxed),
        bytes_total: BYTES_TOTAL.load(Relaxed),
        bytes_live: BYTES_LIVE.load(Relaxed),
        bytes_peak: BYTES_PEAK.load(Relaxed),
    }
}

/// Resets the peak-live-bytes watermark to the current live count, so a
/// following [`snapshot`] reads the peak *within* a measured region.
/// Meaningful only while no other thread allocates (the harness is
/// single-threaded).
pub fn reset_peak() {
    BYTES_PEAK.store(BYTES_LIVE.load(Relaxed), Relaxed);
}

/// Growth between two snapshots of one measured region.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocDelta {
    /// Allocation calls inside the region.
    pub allocs: u64,
    /// Bytes requested inside the region.
    pub bytes: u64,
    /// Peak live bytes observed during the region (requires
    /// [`reset_peak`] at region start to be region-local).
    pub peak_live_bytes: u64,
}

/// Differences `after - before`; `peak_live_bytes` is `after`'s
/// watermark (region-local iff the watermark was reset at `before`).
pub fn delta(before: &AllocSnapshot, after: &AllocSnapshot) -> AllocDelta {
    AllocDelta {
        allocs: after.alloc_calls.saturating_sub(before.alloc_calls),
        bytes: after.bytes_total.saturating_sub(before.bytes_total),
        peak_live_bytes: after.bytes_peak,
    }
}

/// Probes whether the counting allocator is actually installed as the
/// process's global allocator (a library cannot know statically).
pub fn installed() -> bool {
    let before = ALLOC_CALLS.load(Relaxed);
    let v: Vec<u8> = Vec::with_capacity(97);
    std::hint::black_box(&v);
    drop(v);
    ALLOC_CALLS.load(Relaxed) != before
}
