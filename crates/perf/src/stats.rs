//! Robust statistics over nanosecond samples.
//!
//! Benchmark samples are heavy-tailed (scheduler preemption, page
//! faults), so the harness reports order statistics instead of the
//! mean-centric summaries criterion prints: the **median** as the
//! location estimate, the **MAD** (median absolute deviation) as the
//! spread estimate, and a **seeded-bootstrap confidence interval** for
//! the median so `pst bench --compare` can reason about overlap instead
//! of point values. Everything here is deterministic: the bootstrap RNG
//! is a [`SplitMix64`] seeded from the report config, never the clock.

/// Deterministic 64-bit generator (Steele et al., *Fast Splittable
/// Pseudorandom Number Generators*). Tiny, seedable, and good enough
/// for bootstrap resampling — keeping the harness zero-dependency.
#[derive(Clone, Debug)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Creates a generator from a seed (any value, including 0).
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..bound` (`bound` ≥ 1) via 128-bit multiply —
    /// negligible modulo bias is irrelevant for resampling indices.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound >= 1);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Bootstrap parameters; part of the report so CIs are reproducible.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BootstrapConfig {
    /// Number of with-replacement resamples of the sample vector.
    pub resamples: u64,
    /// RNG seed; the same seed over the same samples yields the same CI.
    pub seed: u64,
}

impl Default for BootstrapConfig {
    fn default() -> Self {
        BootstrapConfig {
            resamples: 200,
            seed: 0x5EED,
        }
    }
}

/// Robust summary of one phase's nanosecond samples.
#[derive(Clone, Debug, PartialEq)]
pub struct Summary {
    /// Number of samples summarized.
    pub samples: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Median (integer midpoint of the two central order statistics
    /// when the count is even).
    pub median: u64,
    /// Median absolute deviation from the median.
    pub mad: u64,
    /// Lower end of the 95% bootstrap CI of the median.
    pub ci_lo: u64,
    /// Upper end of the 95% bootstrap CI of the median.
    pub ci_hi: u64,
    /// Arithmetic mean, kept for orientation only — comparisons use the
    /// median and the CI.
    pub mean: f64,
    /// 50th percentile from the `pst-obs` log-linear histogram over the
    /// same samples (≤3% relative error; tracks `median` closely).
    pub p50: u64,
    /// 90th percentile (histogram-derived, like `p50`).
    pub p90: u64,
    /// 99th percentile (histogram-derived). The tail statistic the
    /// `--compare` gate checks alongside the median.
    pub p99: u64,
}

impl Summary {
    /// Summarizes a non-empty sample vector. Panics on an empty slice —
    /// the harness never produces one.
    pub fn from_samples(samples: &[u64], bootstrap: &BootstrapConfig) -> Summary {
        assert!(!samples.is_empty(), "cannot summarize zero samples");
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let med = median_of_sorted(&sorted);
        let mut deviations: Vec<u64> = sorted.iter().map(|&x| x.abs_diff(med)).collect();
        deviations.sort_unstable();
        let (ci_lo, ci_hi) = bootstrap_ci(&sorted, bootstrap);
        let sum: u128 = sorted.iter().map(|&x| x as u128).sum();
        // Quantiles come from the same histogram primitive the rest of
        // the telemetry uses, so a phase's BENCH p99 and its
        // `phase_nanos_*` histogram in the metrics report agree.
        let mut hist = pst_obs::Histogram::new();
        for &x in &sorted {
            hist.record(x);
        }
        Summary {
            samples: sorted.len() as u64,
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            median: med,
            mad: median_of_sorted(&deviations),
            ci_lo,
            ci_hi,
            mean: sum as f64 / sorted.len() as f64,
            p50: hist.quantile(0.50),
            p90: hist.quantile(0.90),
            p99: hist.quantile(0.99),
        }
    }

    /// Whether this summary's CI overlaps another's.
    pub fn ci_overlaps(&self, other: &Summary) -> bool {
        self.ci_lo <= other.ci_hi && other.ci_lo <= self.ci_hi
    }
}

/// Median of an already-sorted slice.
pub fn median_of_sorted(sorted: &[u64]) -> u64 {
    let n = sorted.len();
    assert!(n > 0, "median of empty slice");
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        let (a, b) = (sorted[n / 2 - 1], sorted[n / 2]);
        ((a as u128 + b as u128) / 2) as u64
    }
}

/// Median of an arbitrary slice (convenience for tests).
pub fn median(samples: &[u64]) -> u64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    median_of_sorted(&sorted)
}

/// Median absolute deviation of an arbitrary slice.
pub fn mad(samples: &[u64]) -> u64 {
    let med = median(samples);
    let deviations: Vec<u64> = samples.iter().map(|&x| x.abs_diff(med)).collect();
    median(&deviations)
}

/// Seeded-bootstrap 95% confidence interval for the median: resample
/// the vector with replacement `resamples` times, take each resample's
/// median, and return the 2.5th/97.5th percentiles of those medians.
fn bootstrap_ci(sorted: &[u64], config: &BootstrapConfig) -> (u64, u64) {
    let n = sorted.len();
    if n == 1 || config.resamples == 0 {
        let m = median_of_sorted(sorted);
        return (m, m);
    }
    let mut rng = SplitMix64::new(config.seed);
    let mut medians = Vec::with_capacity(config.resamples as usize);
    let mut resample = vec![0u64; n];
    for _ in 0..config.resamples {
        for slot in resample.iter_mut() {
            *slot = sorted[rng.below(n as u64) as usize];
        }
        resample.sort_unstable();
        medians.push(median_of_sorted(&resample));
    }
    medians.sort_unstable();
    let last = medians.len() - 1;
    let lo_idx = (last as f64 * 0.025).floor() as usize;
    let hi_idx = (last as f64 * 0.975).ceil() as usize;
    (medians[lo_idx], medians[hi_idx.min(last)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_handles_even_and_odd_counts() {
        assert_eq!(median(&[5]), 5);
        assert_eq!(median(&[3, 1, 2]), 2);
        assert_eq!(median(&[4, 1, 3, 2]), 2); // midpoint of 2 and 3
    }

    #[test]
    fn splitmix_is_deterministic_and_bounded() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn ci_brackets_the_median() {
        let samples: Vec<u64> = (0..50).map(|i| 1000 + (i * 37) % 100).collect();
        let s = Summary::from_samples(&samples, &BootstrapConfig::default());
        assert!(s.ci_lo <= s.median && s.median <= s.ci_hi);
        assert!(s.min <= s.ci_lo && s.ci_hi <= s.max);
    }
}
