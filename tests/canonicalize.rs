//! Integration tests for the canonicalization subsystem: fuzzed validity
//! and idempotence, identity on already-valid CFGs, per-variant
//! `ValidateCfgError` round-trips, and differential checks of the full
//! analysis stack on repaired graphs.

use proptest::prelude::*;
use pst_cfg::{
    canonicalize, CanonicalizeError, CanonicalizeOptions, Cfg, Graph, NodeId, Repair,
    UnreachablePolicy, ValidateCfgError,
};
use pst_controldep::fow_control_regions;
use pst_core::{ControlRegions, CycleEquiv, ProgramStructureTree};
use pst_workloads::{random_cfg, random_digraph, DigraphConfig};

fn options(tether: bool, split: bool) -> CanonicalizeOptions {
    CanonicalizeOptions {
        unreachable: if tether {
            UnreachablePolicy::Tether
        } else {
            UnreachablePolicy::Prune
        },
        split_self_loops: split,
    }
}

/// Re-validates a canonicalized CFG through the independent
/// `Cfg::from_graph` checker rather than trusting `canonicalize`'s own
/// construction.
fn assert_valid(cfg: &Cfg) {
    Cfg::from_graph(cfg.graph().clone(), cfg.entry(), cfg.exit())
        .expect("canonicalized CFG must satisfy every Definition-1 invariant");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Canonicalization of an arbitrary digraph always succeeds and always
    /// yields a valid CFG, under every policy combination.
    #[test]
    fn canonicalize_any_digraph_is_valid(
        nodes in 1usize..24,
        edges in 0usize..40,
        seed in 0u64..10_000,
        flags in 0u8..32,
        tether_bit in 0u8..2,
        split_bit in 0u8..2,
    ) {
        let config = DigraphConfig {
            nodes,
            edges,
            force_entry_predecessor: flags & 1 != 0,
            force_unreachable: flags & 2 != 0,
            force_infinite_loop: flags & 4 != 0,
            force_multiple_exits: flags & 8 != 0,
            force_self_loop: flags & 16 != 0,
        };
        let (tether, split) = (tether_bit != 0, split_bit != 0);
        let (g, entry) = random_digraph(&config, seed);
        let opts = options(tether, split);
        let result = canonicalize(&g, entry, &opts).expect("non-empty digraph canonicalizes");
        assert_valid(&result.cfg);
        if split {
            let no_self_loops = result.cfg.graph().edges().all(|e| {
                let (u, v) = result.cfg.graph().endpoints(e);
                u != v
            });
            prop_assert!(no_self_loops, "split_self_loops must remove every self-loop");
        }
    }

    /// Canonicalization is idempotent: running it again on its own output
    /// performs no repairs and preserves the PST.
    #[test]
    fn canonicalize_is_idempotent(
        nodes in 1usize..20,
        edges in 0usize..32,
        seed in 0u64..10_000,
        flags in 0u8..32,
        tether_bit in 0u8..2,
        split_bit in 0u8..2,
    ) {
        let config = DigraphConfig {
            nodes,
            edges,
            force_entry_predecessor: flags & 1 != 0,
            force_unreachable: flags & 2 != 0,
            force_infinite_loop: flags & 4 != 0,
            force_multiple_exits: flags & 8 != 0,
            force_self_loop: flags & 16 != 0,
        };
        let (tether, split) = (tether_bit != 0, split_bit != 0);
        let (g, entry) = random_digraph(&config, seed);
        let opts = options(tether, split);
        let first = canonicalize(&g, entry, &opts).unwrap();
        let second = canonicalize(first.cfg.graph(), first.cfg.entry(), &opts).unwrap();
        prop_assert!(
            second.report.is_identity(),
            "second pass repaired again: {}",
            second.report
        );
        prop_assert_eq!(
            ProgramStructureTree::build(&first.cfg).signature(),
            ProgramStructureTree::build(&second.cfg).signature()
        );
    }

    /// On an already-valid CFG canonicalization is the identity: no
    /// repairs, same shape, same PST.
    #[test]
    fn canonicalize_valid_cfg_is_identity(
        n in 3usize..30,
        extra in 0usize..30,
        seed in 0u64..10_000,
        tether_bit in 0u8..2,
    ) {
        let tether = tether_bit != 0;
        let cfg = random_cfg(n, extra, seed).unwrap();
        let result = canonicalize(cfg.graph(), cfg.entry(), &options(tether, false)).unwrap();
        prop_assert!(result.report.is_identity(), "{}", result.report);
        prop_assert_eq!(result.cfg.node_count(), cfg.node_count());
        prop_assert_eq!(result.cfg.edge_count(), cfg.edge_count());
        prop_assert_eq!(result.cfg.entry(), cfg.entry());
        prop_assert_eq!(result.cfg.exit(), cfg.exit());
        prop_assert_eq!(
            ProgramStructureTree::build(&result.cfg).signature(),
            ProgramStructureTree::build(&cfg).signature()
        );
    }

    /// Differential check of the analysis stack on repaired graphs: fast
    /// cycle equivalence agrees with the §3.3 bracket oracle, and linear
    /// control regions agree with the Ferrante–Ottenstein–Warren baseline.
    #[test]
    fn repaired_graphs_pass_oracle_cross_checks(
        nodes in 1usize..18,
        edges in 0usize..28,
        seed in 0u64..10_000,
        flags in 0u8..32,
    ) {
        let config = DigraphConfig {
            nodes,
            edges,
            force_entry_predecessor: flags & 1 != 0,
            force_unreachable: flags & 2 != 0,
            force_infinite_loop: flags & 4 != 0,
            force_multiple_exits: flags & 8 != 0,
            force_self_loop: flags & 16 != 0,
        };
        let (g, entry) = random_digraph(&config, seed);
        let cfg = canonicalize(&g, entry, &options(false, false)).unwrap().cfg;

        let (s, _) = cfg.to_strongly_connected();
        let fast = CycleEquiv::compute(&s, cfg.entry()).unwrap();
        let slow = pst_core::cycle_equiv_slow_brackets(&s, cfg.entry()).unwrap();
        prop_assert_eq!(fast, slow);

        let linear = ControlRegions::compute(&cfg);
        prop_assert_eq!(&linear, &fow_control_regions(&cfg));
    }
}

/// The ISSUE's acceptance graph: an unreachable node, an infinite loop and
/// two exits, repaired in one pass under both unreachable policies.
#[test]
fn acceptance_graph_repairs_and_analyzes() {
    let parse = || pst_cfg::parse_edge_list_graph("0->1 1->2 2->1 0->3 3->4 0->5 6->3").unwrap();

    let (g, entry) = parse();
    let pruned = canonicalize(&g, entry, &options(false, false)).unwrap();
    let counts = pruned.report.counts();
    assert_eq!(counts.pruned_unreachable, 1);
    assert_eq!(counts.merged_exits, 2);
    assert_eq!(counts.virtual_loop_exits, 1);
    assert_valid(&pruned.cfg);
    assert!(pruned
        .report
        .repairs()
        .iter()
        .any(|r| matches!(r, Repair::VirtualLoopExit { .. })));

    let (g, entry) = parse();
    let tethered = canonicalize(&g, entry, &options(true, false)).unwrap();
    assert_eq!(tethered.report.counts().tethered_unreachable, 1);
    assert_eq!(tethered.report.counts().pruned_unreachable, 0);
    assert_valid(&tethered.cfg);
    // Tethering keeps every input node alive.
    assert!(tethered.node_map.iter().all(Option::is_some));

    // The PST of the repaired graph survives the slow-bracket oracle.
    for cfg in [&pruned.cfg, &tethered.cfg] {
        let (s, _) = cfg.to_strongly_connected();
        let fast = CycleEquiv::compute(&s, cfg.entry()).unwrap();
        let slow = pst_core::cycle_equiv_slow_brackets(&s, cfg.entry()).unwrap();
        assert_eq!(fast, slow);
        assert!(ProgramStructureTree::build(cfg).canonical_region_count() > 0);
    }
}

/// Every `ValidateCfgError` variant round-trips: a graph that provokes the
/// variant through `Cfg::from_graph` is repaired by `canonicalize` with
/// the matching repair recorded.
mod validate_error_round_trips {
    use super::*;

    fn default_opts() -> CanonicalizeOptions {
        CanonicalizeOptions::default()
    }

    #[test]
    fn empty() {
        let g = Graph::new();
        assert_eq!(
            Cfg::from_graph(g.clone(), NodeId::from_index(0), NodeId::from_index(0)).unwrap_err(),
            ValidateCfgError::Empty
        );
        assert_eq!(
            canonicalize(&g, NodeId::from_index(0), &default_opts()).unwrap_err(),
            CanonicalizeError::Empty
        );
    }

    #[test]
    fn entry_has_predecessor() {
        let mut g = Graph::new();
        let n = g.add_nodes(3);
        g.add_edge(n[0], n[1]);
        g.add_edge(n[1], n[0]);
        g.add_edge(n[1], n[2]);
        assert_eq!(
            Cfg::from_graph(g.clone(), n[0], n[2]).unwrap_err(),
            ValidateCfgError::EntryHasPredecessor(n[0])
        );
        let fixed = canonicalize(&g, n[0], &default_opts()).unwrap();
        assert_eq!(fixed.report.counts().synthetic_entries, 1);
        assert_valid(&fixed.cfg);
    }

    #[test]
    fn exit_has_successor() {
        let mut g = Graph::new();
        let n = g.add_nodes(3);
        g.add_edge(n[0], n[1]);
        g.add_edge(n[1], n[2]);
        assert_eq!(
            Cfg::from_graph(g.clone(), n[0], n[1]).unwrap_err(),
            ValidateCfgError::ExitHasSuccessor(n[1])
        );
        // Canonicalization picks the true sink instead, with no repairs.
        let fixed = canonicalize(&g, n[0], &default_opts()).unwrap();
        assert!(fixed.report.is_identity());
        assert_eq!(fixed.cfg.exit(), n[2]);
    }

    #[test]
    fn unreachable_from_entry() {
        let mut g = Graph::new();
        let n = g.add_nodes(3);
        g.add_edge(n[0], n[1]);
        g.add_edge(n[2], n[1]);
        assert_eq!(
            Cfg::from_graph(g.clone(), n[0], n[1]).unwrap_err(),
            ValidateCfgError::UnreachableFromEntry(n[2])
        );
        let pruned = canonicalize(&g, n[0], &default_opts()).unwrap();
        assert_eq!(pruned.report.counts().pruned_unreachable, 1);
        assert_eq!(pruned.node_map[n[2].index()], None);
        assert_valid(&pruned.cfg);
        let tethered = canonicalize(
            &g,
            n[0],
            &CanonicalizeOptions {
                unreachable: UnreachablePolicy::Tether,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(tethered.report.counts().tethered_unreachable, 1);
        assert_valid(&tethered.cfg);
    }

    #[test]
    fn cannot_reach_exit() {
        let mut g = Graph::new();
        let n = g.add_nodes(4);
        g.add_edge(n[0], n[1]);
        g.add_edge(n[1], n[2]);
        g.add_edge(n[2], n[1]);
        g.add_edge(n[0], n[3]);
        assert_eq!(
            Cfg::from_graph(g.clone(), n[0], n[3]).unwrap_err(),
            ValidateCfgError::CannotReachExit(n[1])
        );
        let fixed = canonicalize(&g, n[0], &default_opts()).unwrap();
        assert_eq!(fixed.report.counts().virtual_loop_exits, 1);
        assert_valid(&fixed.cfg);
    }

    #[test]
    fn entry_is_exit() {
        let mut g = Graph::new();
        let n = g.add_node();
        assert_eq!(
            Cfg::from_graph(g.clone(), n, n).unwrap_err(),
            ValidateCfgError::EntryIsExit(n)
        );
        // A lone node gets a synthetic exit so entry != exit.
        let fixed = canonicalize(&g, n, &default_opts()).unwrap();
        assert_eq!(fixed.report.counts().synthetic_exits, 1);
        assert_ne!(fixed.cfg.entry(), fixed.cfg.exit());
        assert_valid(&fixed.cfg);
    }

    #[test]
    fn unknown_entry_is_reported() {
        let mut g = Graph::new();
        g.add_node();
        let bogus = NodeId::from_index(7);
        assert_eq!(
            canonicalize(&g, bogus, &default_opts()).unwrap_err(),
            CanonicalizeError::UnknownEntry(bogus)
        );
    }
}
