//! Lint-engine properties over the generated corpus.
//!
//! Two claims ride on the lint engine: it stays *silent* on correct code
//! (no false alarms from the correctness rules on structured generator
//! output), and it stays *linear* (the `lint_*` work counters are bounded
//! by a fixed multiple of the CFG size at every scale, mirroring the
//! paper's O(E) story).
//!
//! The obs registry is process-global; tests that measure counters
//! serialize on one lock and reset the registry first.

use std::sync::Mutex;

use proptest::prelude::*;
use pst_analysis::{lint_function, lint_graph, LintConfig};
use pst_cfg::CanonicalizeOptions;
use pst_lang::lower_function;
use pst_workloads::{generate_function, random_cfg, ProgramGenConfig};

static OBS_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

proptest! {
    /// Structured generator output is correct by construction: every
    /// variable is seeded before use, control flow is reducible and every
    /// loop is single-entry. The correctness rules (irreducible-loop,
    /// multi-entry-loop, vacuous-branch, uninitialized-use) must not fire
    /// on any of it. The smell rules are explicitly allowed out:
    /// generated code legitimately contains statements cut off by a
    /// `break`/`return` (PST-S003), empty branch arms when the
    /// statement budget runs out mid-block (PST-C002), and loops whose
    /// random bodies never touch the guard variables — the generator
    /// promises well-formedness, not termination, so the
    /// possibly-non-terminating-loop rule (PST-C101) can genuinely fire
    /// on its output; PST-S005 and PST-D002 are silenced for symmetry
    /// so this test pins down exactly the always-silent set.
    #[test]
    fn correctness_rules_are_silent_on_structured_corpus(seed in 0u64..200) {
        let config = ProgramGenConfig {
            goto_prob: 0.0,
            ..ProgramGenConfig::default()
        };
        let function = generate_function("gen", &config, seed);
        let lowered = lower_function(&function).expect("generator output lowers");
        let mut lint_config = LintConfig::new();
        for smell in ["PST-S003", "PST-S005", "PST-C002", "PST-C101", "PST-D002"] {
            lint_config.allow(smell).unwrap();
        }
        let report = lint_function(&lowered, Some(&function), &lint_config);
        prop_assert!(
            report.is_clean(),
            "seed {}: false alarms on clean code: {:?}",
            seed,
            report.diagnostics
        );
    }
}

#[test]
fn graph_lint_counters_scale_linearly_with_edges() {
    let _l = locked();
    assert!(pst_obs::enabled(), "build with the default `obs` feature");
    // Each linear graph-mode rule touches every node and edge at most a
    // constant number of times (reducibility DFS, one SCC pass, a scan of
    // the repair list, one class comparison per out-edge), so total
    // recorded work is bounded by a fixed multiple of E. The strong
    // control-dependence rules (PST-C102/C103) are documented as
    // non-linear and record to `lint_strongdep_work` instead, which is
    // deliberately outside this bound. The sizes span two orders of
    // magnitude in edge count.
    const C: f64 = 8.0;
    let mut edge_counts = Vec::new();
    for n in [20, 200, 2000, 4000] {
        let cfg = random_cfg(n, n / 2, 1994).unwrap();
        pst_obs::reset();
        let lint = lint_graph(
            cfg.graph(),
            cfg.entry(),
            &CanonicalizeOptions::default(),
            &LintConfig::new(),
        )
        .expect("valid CFGs canonicalize");
        assert!(!lint.report.rules_run.is_empty());
        let report = pst_obs::report();
        let e = cfg.edge_count();
        let work =
            report.counter("lint_structural_work") + report.counter("lint_controldep_work");
        assert!(work > 0, "lint recorded no work at n={n}");
        assert!(
            report.counter("lint_strongdep_work") > 0,
            "strong rules recorded no work at n={n}"
        );
        assert!(
            (work as f64) <= C * e as f64,
            "lint work {work} exceeds {C}*E (E={e}) at n={n}: not linear"
        );
        edge_counts.push(e);
    }
    assert!(edge_counts[edge_counts.len() - 1] >= edge_counts[0] * 100);
}

#[test]
fn function_lint_counters_scale_with_program_size() {
    let _l = locked();
    assert!(pst_obs::enabled(), "build with the default `obs` feature");
    const C: f64 = 8.0;
    for stmts in [40, 400, 4000] {
        let config = ProgramGenConfig {
            target_stmts: stmts,
            goto_prob: 0.0,
            ..ProgramGenConfig::default()
        };
        let function = generate_function("gen", &config, 7);
        let lowered = lower_function(&function).expect("generator output lowers");
        pst_obs::reset();
        let report = lint_function(&lowered, Some(&function), &LintConfig::new());
        assert_eq!(report.rules_run.len(), 9, "all mini rules ran");
        let obs = pst_obs::report();
        let size = lowered.statement_count()
            + lowered.cfg.node_count()
            + lowered.cfg.edge_count();
        for family in ["lint_structural_work", "lint_controldep_work", "lint_dataflow_work"] {
            let work = obs.counter(family);
            assert!(work > 0, "{family} recorded nothing at {stmts} stmts");
            assert!(
                (work as f64) <= C * size as f64,
                "{family}={work} exceeds {C}*size (size={size}) at {stmts} stmts"
            );
        }
    }
}
