//! Reconstructions of the paper's figures as executable tests.
//!
//! Figure 1 cannot be copied exactly (the scan is garbled), so we build a
//! CFG with the same inventory of features it illustrates — sequential
//! composition, nesting, a loop region and a conditional region — and
//! assert the properties the paper reads off the figure. Figure 3's three
//! bracket-set scenarios (structured loops, overlapping loops, a branch
//! node needing a capping backedge) are encoded directly.

use pst_cfg::parse_edge_list;
use pst_core::{
    canonical_regions, classify_regions, cycle_equiv_slow_directed, CycleEquiv,
    ProgramStructureTree, RegionKind,
};

/// start → a → [if] → … → [while] → … → end, with the conditional and the
/// loop in sequence inside the procedure body.
const FIGURE1_LIKE: &str = "0->1 1->2 2->3 2->4 3->5 4->5 5->6 6->7 7->6 6->8 8->9";

#[test]
fn figure1_regions_nest_and_compose_sequentially() {
    let cfg = parse_edge_list(FIGURE1_LIKE).unwrap();
    let pst = ProgramStructureTree::build(&cfg);

    // The conditional (nodes 2..5) and the loop (nodes 6,7) produce nested
    // canonical regions; chains around them compose sequentially.
    let n = |i| pst_cfg::NodeId::from_index(i);
    let cond_region = pst.region_of_node(n(2));
    let arm_region = pst.region_of_node(n(3));
    let loop_region = pst.region_of_node(n(6));
    let body_region = pst.region_of_node(n(7));

    // Nesting (paper: "regions a and b are nested").
    assert_eq!(pst.parent(arm_region), Some(cond_region));
    assert_eq!(pst.parent(body_region), Some(loop_region));
    // Disjoint regions (paper: "regions b and c are disjoint").
    assert!(!pst.region_contains(cond_region, loop_region));
    assert!(!pst.region_contains(loop_region, cond_region));
    // Sequential composition shows as siblings under a common parent.
    assert_eq!(pst.parent(cond_region), pst.parent(loop_region));

    let kinds = classify_regions(&cfg, &pst);
    assert_eq!(kinds.kind(cond_region), RegionKind::IfThenElse);
    assert_eq!(kinds.kind(loop_region), RegionKind::Loop);
    assert!(kinds.is_completely_structured());
}

#[test]
fn figure3a_structured_loops_have_nested_brackets() {
    // A chain with properly nested backedges: every loop pair (header,
    // latch edge) forms its own cycle-equivalence class.
    let cfg = parse_edge_list("0->1 1->2 2->3 3->2 2->4 4->1 1->5").unwrap();
    let (s, _) = cfg.to_strongly_connected();
    let fast = CycleEquiv::compute(&s, cfg.entry()).unwrap();
    assert_eq!(fast, cycle_equiv_slow_directed(&s, None).unwrap());
}

#[test]
fn figure3b_overlapping_loops_are_distinguished() {
    // Backedges that are NOT properly nested (the case that forces the
    // bracket list to support deletion from the middle).
    let cfg = parse_edge_list("0->1 1->2 2->3 3->4 4->5 3->1 5->2 5->6").unwrap();
    let (s, _) = cfg.to_strongly_connected();
    let fast = CycleEquiv::compute(&s, cfg.entry()).unwrap();
    assert_eq!(fast, cycle_equiv_slow_directed(&s, None).unwrap());
    // The two backedges close different loops: never equivalent.
    let g = cfg.graph();
    let b1 = g
        .edges()
        .find(|&e| g.source(e).index() == 3 && g.target(e).index() == 1)
        .unwrap();
    let b2 = g
        .edges()
        .find(|&e| g.source(e).index() == 5 && g.target(e).index() == 2)
        .unwrap();
    assert!(!fast.same_class(b1, b2));
}

#[test]
fn figure3c_branch_nodes_need_capping_backedges() {
    // A node with two children whose bracket sets merge: without capping
    // backedges the compact names would collide across the branch.
    let cfg = parse_edge_list("0->1 1->2 1->3 2->4 3->4 2->2 3->5 4->5 2->5").unwrap();
    let (s, _) = cfg.to_strongly_connected();
    let fast = CycleEquiv::compute(&s, cfg.entry()).unwrap();
    assert_eq!(fast, cycle_equiv_slow_directed(&s, None).unwrap());
}

#[test]
fn canonical_region_count_matches_class_structure() {
    let cfg = parse_edge_list(FIGURE1_LIKE).unwrap();
    let found = canonical_regions(&cfg);
    // Regions = Σ (class size − 1) over CFG-edge classes.
    let expected: usize = found
        .ordered_classes
        .iter()
        .map(|c| c.len().saturating_sub(1))
        .sum();
    assert_eq!(found.regions.len(), expected);
    assert!(found.regions.len() >= 6);
}
