//! Executable check of the paper's O(E) claim via observability counters.
//!
//! The bracket-list counters recorded by `pst-obs` make the linear-time
//! argument of §3 testable: every bracket is pushed and popped exactly
//! once, and the number of brackets is bounded by the number of edges
//! plus one capping bracket per node, so `brackets_pushed` must stay
//! below a fixed multiple of the edge count at every scale. The sizes
//! below span more than two orders of magnitude in edge count.
//!
//! The obs registry is process-global, so every test in this binary
//! serializes on one lock and resets the registry before measuring.

use std::sync::Mutex;

use pst_core::canonical_regions;
use pst_workloads::{nested_while_loops, random_cfg};

static OBS_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// Counters recorded by one `canonical_regions` run over `cfg`.
fn measure(cfg: &pst_cfg::Cfg) -> pst_obs::Report {
    pst_obs::reset();
    let _ = canonical_regions(cfg);
    pst_obs::report()
}

#[test]
fn bracket_counters_scale_linearly_with_edges() {
    let _l = locked();
    assert!(pst_obs::enabled(), "build with the default `obs` feature");

    // Each run analyzes S = G + (exit -> entry): at most one bracket per
    // backedge plus one capping bracket per node, every one pushed and
    // popped exactly once. E' = E + 1 and N <= E + 1, so pushes are
    // bounded by 2E + 4; c = 4 leaves slack without hiding regressions.
    const C: f64 = 4.0;
    let mut edge_counts: Vec<usize> = Vec::new();
    for n in [20, 200, 2000, 4000] {
        let cfg = random_cfg(n, n / 2, 1994).unwrap();
        let report = measure(&cfg);
        let e = cfg.edge_count();
        let pushed = report.counter("brackets_pushed");
        let popped = report.counter("brackets_popped");
        assert!(pushed > 0, "instrumentation recorded nothing at n={n}");
        assert_eq!(pushed, popped, "every bracket is deleted exactly once");
        assert!(
            (pushed as f64) <= C * e as f64,
            "brackets_pushed={pushed} exceeds {C}*E (E={e}) at n={n}: not linear"
        );
        // Each recomputation mints a fresh equivalence class, and class
        // count is bounded by the edge count of S, so this is linear too.
        assert!(
            (report.counter("recent_size_recomputed") as f64) <= C * e as f64,
            "recent-size recomputations exceed the linear bound at n={n}"
        );
        edge_counts.push(e);
    }
    let (min, max) = (edge_counts[0], edge_counts[edge_counts.len() - 1]);
    assert!(
        max >= min * 100,
        "edge counts {edge_counts:?} must span two orders of magnitude"
    );
}

#[test]
fn deeply_nested_loops_stay_linear_too() {
    let _l = locked();
    // Nested loops maximize live bracket lists; the bound must hold on
    // this adversarial shape as well, not just on random CFGs.
    for depth in [5, 50, 500] {
        let cfg = nested_while_loops(depth);
        let report = measure(&cfg);
        let e = cfg.edge_count() as f64;
        let pushed = report.counter("brackets_pushed") as f64;
        assert!(pushed > 0.0 && pushed <= 4.0 * e);
    }
}

#[test]
fn minimal_cfg_counters() {
    let _l = locked();
    // The smallest valid CFG (entry -> exit) has a single bracket: the
    // virtual backedge of S.
    let cfg = pst_cfg::parse_edge_list("0->1").unwrap();
    let report = measure(&cfg);
    assert_eq!(report.counter("brackets_pushed"), 1);
    assert_eq!(report.counter("brackets_popped"), 1);
    assert_eq!(report.counter("brackets_capped"), 0);
    assert_eq!(report.gauge("cycle_equiv_nodes"), 2);
    assert_eq!(report.gauge("cycle_equiv_edges"), 2); // edge + virtual
}

#[test]
fn empty_input_records_no_pipeline_counters() {
    let _l = locked();
    pst_obs::reset();
    assert!(pst_lang::parse_program("").is_err());
    let report = pst_obs::report();
    // The parse span is recorded, but no pipeline work happened.
    assert_eq!(report.counter("brackets_pushed"), 0);
    assert_eq!(report.counter("functions_lowered"), 0);
    assert!(report.spans.iter().any(|s| s.name == "parse"));
}

#[test]
fn full_pipeline_produces_the_expected_span_tree() {
    let _l = locked();
    pst_obs::reset();
    let program = pst_lang::parse_program(
        "fn f(n) { s = 0; while (n > 0) { s = s + n; n = n - 1; } return s; }",
    )
    .unwrap();
    let lowered = pst_lang::lower_program(&program).unwrap();
    let pst = pst_core::ProgramStructureTree::build(&lowered[0].cfg);
    assert!(pst.region_count() > 0);
    let json = pst_obs::report().to_json();
    let text = json.to_string();
    let parsed = pst_obs::json::Json::parse(&text).unwrap();
    // parse and lower are roots; cycle_equiv nests under pst -> sese.
    for name in ["parse", "lower", "pst", "sese", "cycle_equiv", "undirected_dfs"] {
        let span = parsed
            .find_object_with("name", name)
            .unwrap_or_else(|| panic!("span `{name}` missing from {text}"));
        assert!(
            span.get("nanos").and_then(|j| j.as_u64()).is_some(),
            "span `{name}` has no duration"
        );
    }
    let pst_span = parsed
        .find_object_with("name", "pst")
        .unwrap();
    assert!(
        pst_span
            .find_object_with("name", "cycle_equiv")
            .is_some(),
        "cycle_equiv must be nested inside the pst span"
    );
}
