//! Corpus-wide invariants: the synthetic Perfect/SPEC89 stand-in has the
//! paper's shape, and every analysis holds over all 254 procedures.

use pst_core::{classify_regions, ProgramStructureTree, PstStats};
use pst_workloads::{paper_corpus, PAPER_TABLE};

#[test]
fn corpus_matches_paper_shape() {
    let corpus = paper_corpus(1994);
    assert_eq!(corpus.len(), 254);
    for &(_, program, _, procs) in PAPER_TABLE {
        assert_eq!(
            corpus.iter().filter(|p| p.program == program).count(),
            procs,
            "{program}"
        );
    }

    let mut all_stats = Vec::new();
    let mut structured = 0usize;
    for p in corpus.iter() {
        let pst = ProgramStructureTree::build(&p.lowered.cfg);
        all_stats.push(PstStats::of(&pst));
        if classify_regions(&p.lowered.cfg, &pst).is_completely_structured() {
            structured += 1;
        }
    }
    let merged = PstStats::merge(&all_stats);

    // Figure 5's qualitative claims.
    assert!(merged.region_count > 5_000, "corpus is region-rich");
    let avg = merged.average_depth();
    assert!((2.0..4.0).contains(&avg), "broad and shallow (got {avg})");
    assert!(
        merged.cumulative_at_depth(6) > 0.95,
        "~97% of regions at depth <= 6"
    );

    // §4: most procedures completely structured, but not all.
    assert!(structured > 254 / 2, "mostly structured ({structured})");
    assert!(structured < 254, "some unstructured procedures exist");
}

#[test]
fn pst_size_grows_with_procedure_size_but_depth_does_not() {
    let corpus = paper_corpus(1994);
    let mut small = Vec::new();
    let mut large = Vec::new();
    for p in corpus.iter() {
        let pst = ProgramStructureTree::build(&p.lowered.cfg);
        let s = PstStats::of(&pst);
        if s.procedure_size < 30 {
            small.push(s);
        } else if s.procedure_size > 100 {
            large.push(s);
        }
    }
    assert!(!small.is_empty() && !large.is_empty());
    let avg = |v: &[PstStats], f: &dyn Fn(&PstStats) -> f64| {
        v.iter().map(f).sum::<f64>() / v.len() as f64
    };
    // Figure 6(a): region count grows.
    let small_regions = avg(&small, &|s| s.region_count as f64);
    let large_regions = avg(&large, &|s| s.region_count as f64);
    assert!(large_regions > 2.0 * small_regions);
    // Figure 6(b): depth stays flat (within 2x).
    let small_depth = avg(&small, &|s| s.average_depth());
    let large_depth = avg(&large, &|s| s.average_depth());
    assert!(large_depth < 2.0 * small_depth + 1.0);
    // Figure 9: max region size grows sublinearly vs procedure size.
    let small_max = avg(&small, &|s| s.max_collapsed_size as f64);
    let large_max = avg(&large, &|s| s.max_collapsed_size as f64);
    let size_ratio =
        avg(&large, &|s| s.procedure_size as f64) / avg(&small, &|s| s.procedure_size as f64);
    assert!(large_max / small_max < size_ratio / 1.5);
}

#[test]
fn corpus_is_reproducible_across_builds() {
    let a = paper_corpus(1994);
    let b = paper_corpus(1994);
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.lowered.cfg, y.lowered.cfg);
    }
}

/// The quantitative claims of §6.1/§6.2, enforced with tolerances: the
/// sparsity distribution of Figure 10 and the QPG size economy. Uses a
/// corpus subsample so the test stays fast in debug builds.
#[test]
fn sparsity_claims_hold_on_a_subsample() {
    use pst_core::collapse_all;
    use pst_dataflow::{QpgContext, SingleVariableReachingDefs};
    use pst_lang::VarId;
    use pst_ssa::{place_phis_cytron, place_phis_pst};

    let corpus = paper_corpus(1994);
    let mut fractions = Vec::new();
    let mut qpg_ratios = Vec::new();
    for p in corpus.iter().step_by(4) {
        let l = &p.lowered;
        let pst = ProgramStructureTree::build(&l.cfg);
        let collapsed = collapse_all(&l.cfg, &pst);
        let sparse = place_phis_pst(l, &pst, &collapsed).unwrap();
        assert_eq!(sparse.placement, place_phis_cytron(l), "Theorem 9");
        for v in 0..l.var_count() {
            fractions.push(sparse.fraction_examined(VarId::from_index(v)));
        }
        let ctx = QpgContext::new(&l.cfg, &pst).unwrap();
        let stmt_size = l.statement_count().max(l.cfg.node_count());
        for v in 0..l.var_count() {
            let problem = SingleVariableReachingDefs::new(l, VarId::from_index(v));
            let qpg = ctx.build_from_sites(problem.sites()).unwrap();
            qpg_ratios.push(qpg.node_count() as f64 / stmt_size as f64);
        }
    }
    // Figure 10: most variables examine under a fifth of the regions
    // (paper: ~70 %; require a solid majority on the subsample).
    let below_fifth =
        fractions.iter().filter(|&&f| f < 0.2).count() as f64 / fractions.len() as f64;
    assert!(below_fifth > 0.55, "only {below_fifth:.2} below 1/5");
    // §6.2: QPGs are a small fraction of the statement-level CFG
    // (paper: < 10 %; allow 20 % for the smaller synthetic procedures).
    let avg_ratio = qpg_ratios.iter().sum::<f64>() / qpg_ratios.len() as f64;
    assert!(avg_ratio < 0.2, "average QPG ratio {avg_ratio:.2}");
}
