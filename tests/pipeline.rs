//! End-to-end pipeline test: source text → CFG → PST → classification →
//! control regions → SSA → data flow, with cross-crate consistency checks
//! at every stage.

use pst_controldep::{cfs_control_regions, fow_control_regions};
use pst_core::{classify_regions, collapse_all, ControlRegions, ProgramStructureTree, PstStats};
use pst_dataflow::{
    solve_elimination, solve_iterative, QpgContext, ReachingDefinitions, SingleVariableReachingDefs,
};
use pst_lang::{lower_function, parse_program, VarId};
use pst_ssa::{place_phis_cytron, place_phis_pst, rename};

const SOURCE: &str = "
    fn kernel(n, mode) {
        acc = 0;
        for (i = 0; i < n; i = i + 1) {
            switch (mode) {
                case 0: { acc = acc + i; }
                case 1: { acc = acc - i; }
                default: {
                    if (acc > 100) { acc = acc / 2; } else { acc = acc * 2; }
                }
            }
        }
        j = n;
        while (j > 0) {
            acc = acc + probe(j);
            j = j - 1;
        }
        return acc;
    }";

#[test]
fn full_pipeline_is_consistent() {
    let program = parse_program(SOURCE).expect("parses");
    let lowered = lower_function(&program.functions[0]).expect("lowers");
    assert!(lowered.cfg.node_count() > 10);

    // PST construction and shape.
    let pst = ProgramStructureTree::build(&lowered.cfg);
    let stats = PstStats::of(&pst);
    assert!(stats.region_count >= 8, "rich structure expected");
    assert!(stats.max_depth >= 2);

    // Classification: this function is completely structured.
    let kinds = classify_regions(&lowered.cfg, &pst);
    assert!(kinds.is_completely_structured());

    // Control regions: all three algorithms agree.
    let cr = ControlRegions::compute(&lowered.cfg);
    assert_eq!(cr, fow_control_regions(&lowered.cfg));
    assert_eq!(cr, cfs_control_regions(&lowered.cfg));
    assert!(cr.num_classes() >= 4);

    // SSA: PST placement equals IDF placement; renaming is well formed.
    let collapsed = collapse_all(&lowered.cfg, &pst);
    let baseline = place_phis_cytron(&lowered);
    let sparse = place_phis_pst(&lowered, &pst, &collapsed).unwrap();
    assert_eq!(baseline, sparse.placement);
    let acc = lowered.var_id("acc").expect("acc exists");
    assert!(!baseline.phis_of(acc).is_empty(), "acc merges in loops");
    let ssa = rename(&lowered, &baseline).unwrap();
    assert!(ssa.total_phis() >= baseline.total_phis());

    // Data flow: elimination over the PST equals the iterative solution,
    // and per-variable QPGs solve to the same values as the full graph.
    let rd = ReachingDefinitions::new(&lowered);
    assert_eq!(
        solve_elimination(&lowered.cfg, &pst, &collapsed, &rd).unwrap(),
        solve_iterative(&lowered.cfg, &rd)
    );
    let ctx = QpgContext::new(&lowered.cfg, &pst).unwrap();
    for v in 0..lowered.var_count() {
        let var = VarId::from_index(v);
        let problem = SingleVariableReachingDefs::new(&lowered, var);
        let qpg = ctx.build_from_sites(problem.sites()).unwrap();
        assert_eq!(
            ctx.solve(&qpg, &problem).unwrap(),
            solve_iterative(&lowered.cfg, &problem),
            "variable {}",
            lowered.var_name(var)
        );
        assert!(qpg.node_count() <= lowered.cfg.node_count());
    }
}

#[test]
fn multi_function_programs_lower_independently() {
    let program = parse_program(
        "fn a(x) { return x + 1; }
         fn b(y) { while (y > 0) { y = y - 2; } return y; }",
    )
    .expect("parses");
    let lowered = pst_lang::lower_program(&program).expect("lowers");
    assert_eq!(lowered.len(), 2);
    let pst_a = ProgramStructureTree::build(&lowered[0].cfg);
    let pst_b = ProgramStructureTree::build(&lowered[1].cfg);
    assert!(pst_b.canonical_region_count() > pst_a.canonical_region_count());
}
