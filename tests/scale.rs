//! Scale tests: the linear-time machinery on graphs and programs far
//! larger than the corpus procedures. These run in debug CI time (a few
//! seconds each) and assert structural invariants that would break loudly
//! if any pass were accidentally super-linear or stack-recursive.

use pst_core::{classify_regions, collapse_all, ControlRegions, ProgramStructureTree, PstStats};
use pst_dataflow::{solve_elimination, solve_iterative, ReachingDefinitions};
use pst_ssa::{place_phis_cytron, place_phis_pst};
use pst_workloads::{
    diamond_ladder, generate_function, linear_chain, nested_repeat_until, random_cfg,
    ProgramGenConfig,
};

#[test]
fn pst_on_a_100k_node_chain() {
    let cfg = linear_chain(100_000);
    let pst = ProgramStructureTree::build(&cfg);
    // A chain of E edges has E-1 sequentially composed regions.
    assert_eq!(pst.canonical_region_count(), cfg.edge_count() - 1);
    let stats = PstStats::of(&pst);
    assert_eq!(stats.max_depth, 1, "all regions are root children");
}

#[test]
fn pst_on_a_deep_ladder_and_loop_nest() {
    let ladder = diamond_ladder(20_000);
    let pst = ProgramStructureTree::build(&ladder);
    assert!(pst.canonical_region_count() >= 40_000);

    let nest = nested_repeat_until(5_000);
    let pst = ProgramStructureTree::build(&nest);
    let stats = PstStats::of(&pst);
    assert!(stats.max_depth >= 5_000, "nesting is as deep as the source");
}

#[test]
fn control_regions_on_a_large_random_graph() {
    let cfg = random_cfg(20_000, 10_000, 99).unwrap();
    let cr = ControlRegions::compute(&cfg);
    assert!(cr.num_classes() >= 2);
    // Entry and exit always share a class (both unconditional).
    assert!(cr.same_region(cfg.entry(), cfg.exit()));
}

#[test]
fn full_stack_on_a_large_generated_program() {
    let config = ProgramGenConfig {
        target_stmts: 8_000,
        num_vars: 200,
        goto_prob: 0.02,
        ..Default::default()
    };
    let f = generate_function("big", &config, 42);
    let l = pst_lang::lower_function(&f).unwrap();
    assert!(l.cfg.node_count() > 3_000, "got {}", l.cfg.node_count());

    let pst = ProgramStructureTree::build(&l.cfg);
    let collapsed = collapse_all(&l.cfg, &pst);
    let kinds = classify_regions(&l.cfg, &pst);
    assert!(pst.canonical_region_count() > 1_000);
    let _ = kinds.weighted_counts();

    // φ-placement equality at scale.
    let baseline = place_phis_cytron(&l);
    let sparse = place_phis_pst(&l, &pst, &collapsed).unwrap();
    assert_eq!(baseline, sparse.placement);

    // Elimination solving equality at scale.
    let rd = ReachingDefinitions::new(&l);
    assert_eq!(
        solve_elimination(&l.cfg, &pst, &collapsed, &rd).unwrap(),
        solve_iterative(&l.cfg, &rd)
    );
}

#[test]
fn incremental_insertion_on_a_large_nest_is_local() {
    let cfg = pst_workloads::nested_while_loops(2_000);
    let pst = ProgramStructureTree::build(&cfg);
    // Self-loop on the innermost body block.
    let body = pst_cfg::NodeId::from_index(2_001);
    let grown = pst_core::insert_edge(&cfg, &pst, body, body).unwrap();
    assert!(
        grown.rebuilt_nodes <= 2,
        "recomputed {} nodes",
        grown.rebuilt_nodes
    );
    // Spot-check the splice without a full O(N²) signature comparison:
    // region count grows by exactly one (the new self-loop class).
    assert_eq!(
        grown.pst.canonical_region_count(),
        pst.canonical_region_count()
    );
}

/// The §6.1 quadratic-blowup claim, measured directly: for nested
/// repeat-until loops the *global* dominance-frontier table is Θ(N²)
/// while the per-region (collapsed) tables total Θ(N).
#[test]
fn nested_repeat_until_frontier_blowup_is_avoided_per_region() {
    use pst_dominators::{dominance_frontiers, dominator_tree, Direction};

    let measure = |depth: usize| -> (usize, usize) {
        let cfg = nested_repeat_until(depth);
        // Global DF table entries.
        let dt = dominator_tree(cfg.graph(), cfg.entry());
        let df = dominance_frontiers(cfg.graph(), &dt, Direction::Forward);
        let global: usize = df.iter().map(|f| f.len()).sum();
        // Per-region DF tables over the collapsed graphs.
        let pst = ProgramStructureTree::build(&cfg);
        let collapsed = collapse_all(&cfg, &pst);
        let mut per_region = 0usize;
        for mini in &collapsed {
            if mini.graph.node_count() == 0 {
                continue;
            }
            let mut g = mini.graph.clone();
            let entry = g.add_node();
            g.add_edge(entry, mini.head);
            let dt = dominator_tree(&g, entry);
            let df = dominance_frontiers(&g, &dt, Direction::Forward);
            per_region += df.iter().map(|f| f.len()).sum::<usize>();
        }
        (global, per_region)
    };

    let (g1, r1) = measure(50);
    let (g2, r2) = measure(200);
    // Global grows ~quadratically (16x for 4x depth), per-region ~linearly.
    assert!(g2 > 10 * g1, "global DF: {g1} -> {g2}");
    assert!(r2 < 6 * r1, "per-region DF: {r1} -> {r2}");
    // And at depth 200 the gap itself is an order of magnitude.
    assert!(g2 > 10 * r2, "global {g2} vs per-region {r2}");
}
