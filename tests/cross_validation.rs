//! Cross-crate property tests on random CFGs: every independently
//! implemented algorithm pair must agree.

use proptest::prelude::*;
use pst_controldep::{cfs_control_regions, fow_control_regions};
use pst_core::{collapse_all, ControlRegions, CycleEquiv, ProgramStructureTree};
use pst_dataflow::{
    solve_elimination, solve_iterative, QpgContext, ReachingDefinitions, SingleVariableReachingDefs,
};
use pst_dominators::{dominator_tree_in, iterative_dominator_tree, Direction};
use pst_lang::VarId;
use pst_workloads::{generate_function, random_cfg, ProgramGenConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// Lengauer–Tarjan and Cooper–Harvey–Kennedy compute identical
    /// dominator and postdominator trees.
    #[test]
    fn dominator_implementations_agree(n in 3usize..40, extra in 0usize..40, seed in 0u64..10_000) {
        let cfg = random_cfg(n, extra, seed).unwrap();
        for (root, dir) in [(cfg.entry(), Direction::Forward), (cfg.exit(), Direction::Backward)] {
            let lt = dominator_tree_in(cfg.graph(), root, dir);
            let it = iterative_dominator_tree(cfg.graph(), root, dir);
            for node in cfg.graph().nodes() {
                prop_assert_eq!(lt.idom(node), it.idom(node));
            }
        }
    }

    /// The fast cycle-equivalence algorithm agrees with the §3.3
    /// bracket-set formulation on CFG closures.
    #[test]
    fn bracket_set_formulations_agree(n in 3usize..30, extra in 0usize..30, seed in 0u64..10_000) {
        let cfg = random_cfg(n, extra, seed).unwrap();
        let (s, _) = cfg.to_strongly_connected();
        let fast = CycleEquiv::compute(&s, cfg.entry()).unwrap();
        let slow = pst_core::cycle_equiv_slow_brackets(&s, cfg.entry()).unwrap();
        prop_assert_eq!(fast, slow);
    }

    /// Control regions: linear algorithm vs both baselines on random CFGs.
    #[test]
    fn control_regions_three_ways(n in 3usize..28, extra in 0usize..28, seed in 0u64..10_000) {
        let cfg = random_cfg(n, extra, seed).unwrap();
        let fast = ControlRegions::compute(&cfg);
        prop_assert_eq!(&fast, &fow_control_regions(&cfg));
        prop_assert_eq!(&fast, &cfs_control_regions(&cfg));
    }

    /// Full stack on generated programs: φ-placement equality and
    /// data-flow solver agreement, including the amortized QPG context.
    #[test]
    fn generated_program_full_stack(seed in 0u64..20_000) {
        let config = ProgramGenConfig {
            target_stmts: 45,
            goto_prob: 0.08,
            ..Default::default()
        };
        let f = generate_function("p", &config, seed);
        let l = pst_lang::lower_function(&f).unwrap();
        let pst = ProgramStructureTree::build(&l.cfg);
        let collapsed = collapse_all(&l.cfg, &pst);

        let baseline = pst_ssa::place_phis_cytron(&l);
        let sparse = pst_ssa::place_phis_pst(&l, &pst, &collapsed).unwrap();
        prop_assert_eq!(&baseline, &sparse.placement);

        let rd = ReachingDefinitions::new(&l);
        prop_assert_eq!(
            solve_elimination(&l.cfg, &pst, &collapsed, &rd).unwrap(),
            solve_iterative(&l.cfg, &rd)
        );

        let ctx = QpgContext::new(&l.cfg, &pst).unwrap();
        for v in (0..l.var_count()).step_by(3) {
            let var = VarId::from_index(v);
            let p = SingleVariableReachingDefs::new(&l, var);
            let qpg = ctx.build_from_sites(p.sites()).unwrap();
            prop_assert_eq!(ctx.solve(&qpg, &p).unwrap(), solve_iterative(&l.cfg, &p));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Theorem 10: every SESE region of a reducible CFG is reducible.
    /// Structured programs (no goto) lower to reducible CFGs; each
    /// region's collapsed graph must then be reducible too.
    #[test]
    fn theorem10_regions_of_reducible_graphs_are_reducible(seed in 0u64..20_000) {
        let config = ProgramGenConfig {
            target_stmts: 50,
            goto_prob: 0.0,
            ..Default::default()
        };
        let f = generate_function("p", &config, seed);
        let l = pst_lang::lower_function(&f).unwrap();
        prop_assert!(pst_cfg::is_reducible(l.cfg.graph(), l.cfg.entry(), None));
        let pst = ProgramStructureTree::build(&l.cfg);
        let collapsed = collapse_all(&l.cfg, &pst);
        for r in pst.regions() {
            let mini = &collapsed[r.index()];
            if mini.graph.node_count() == 0 {
                continue;
            }
            prop_assert!(
                pst_cfg::is_reducible(&mini.graph, mini.head, None),
                "region {:?} of a reducible CFG is irreducible", r
            );
        }
    }

    /// §6.3 divide-and-conquer dominators and incremental maintenance
    /// compose with the rest of the stack on generated programs.
    #[test]
    fn pst_dominators_and_incremental_on_programs(seed in 0u64..10_000, us in 0usize..500, vs in 0usize..500) {
        let config = ProgramGenConfig { target_stmts: 35, goto_prob: 0.06, ..Default::default() };
        let f = generate_function("p", &config, seed);
        let l = pst_lang::lower_function(&f).unwrap();
        let pst = ProgramStructureTree::build(&l.cfg);
        let collapsed = collapse_all(&l.cfg, &pst);

        // Dominators via the PST equal Lengauer–Tarjan.
        let via_pst = pst_apps::dominator_tree_via_pst(&l.cfg, &pst, &collapsed);
        let lt = pst_dominators::dominator_tree(l.cfg.graph(), l.cfg.entry());
        for node in l.cfg.graph().nodes() {
            prop_assert_eq!(via_pst.idom(node), lt.idom(node));
        }

        // Incremental insertion equals a from-scratch rebuild.
        let n = l.cfg.node_count();
        let u = pst_cfg::NodeId::from_index(us % (n - 1));
        let u = if u == l.cfg.exit() { l.cfg.entry() } else { u };
        let v = pst_cfg::NodeId::from_index(1 + vs % (n - 1));
        let grown = pst_core::insert_edge(&l.cfg, &pst, u, v).expect("valid insertion");
        let fresh = ProgramStructureTree::build(&grown.cfg);
        prop_assert_eq!(grown.pst.signature(), fresh.signature());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// Cross-check the dominator view of loops against the PST view: on a
    /// reducible CFG, every natural loop lies inside a SESE region
    /// classified as `Loop`, and the loop's nodes are contained in that
    /// region.
    #[test]
    fn natural_loops_agree_with_loop_regions(seed in 0u64..10_000) {
        use pst_core::{classify_regions, RegionKind};
        use pst_dominators::LoopForest;
        let config = ProgramGenConfig { target_stmts: 40, goto_prob: 0.0, ..Default::default() };
        let f = generate_function("p", &config, seed);
        let l = pst_lang::lower_function(&f).unwrap();
        let pst = ProgramStructureTree::build(&l.cfg);
        let kinds = classify_regions(&l.cfg, &pst);
        let forest = LoopForest::compute(&l.cfg);
        for natural in forest.loops() {
            // The innermost region containing the header: walk up until a
            // region contains the whole loop body.
            let mut region = pst.region_of_node(natural.header);
            loop {
                let all_in = natural.body.iter().all(|&v| pst.contains_node(region, v));
                if all_in {
                    break;
                }
                region = pst.parent(region).expect("root contains everything");
            }
            // That region must be cyclic — classified Loop (it is
            // reducible by Theorem 10, so never Unstructured).
            prop_assert_eq!(
                kinds.kind(region),
                RegionKind::Loop,
                "header {:?}", natural.header
            );
        }
    }
}
