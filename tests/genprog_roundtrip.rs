//! `parse → pretty → parse` is a fixed point on generator output.
//!
//! The seeded program generator builds ASTs directly, so it exercises the
//! pretty-printer/parser pair from the opposite direction of the lang
//! crate's own property tests (which start from proptest-built ASTs):
//! every construct the generator can emit — nested loops, switches, goto
//! templates — must print to concrete syntax the parser maps back to the
//! *same* AST, and printing must be idempotent from then on.

use proptest::prelude::*;
use pst_lang::{parse_program, pretty_function, pretty_program};
use pst_workloads::{generate_function, ProgramGenConfig};

proptest! {
    #[test]
    fn parse_pretty_parse_is_fixed_point(seed in 0u64..300, unstructured in 0u8..3) {
        let config = ProgramGenConfig {
            // Sweep structure levels: fully structured, the paper's mix,
            // and goto-heavy.
            goto_prob: match unstructured {
                0 => 0.0,
                1 => 0.04,
                _ => 0.3,
            },
            ..ProgramGenConfig::default()
        };
        let generated = generate_function("gen", &config, seed);
        let printed = pretty_function(&generated);
        let parsed = parse_program(&printed)
            .unwrap_or_else(|e| panic!("seed {seed}: generator output failed to parse: {e}\n{printed}"));
        prop_assert_eq!(parsed.functions.len(), 1);
        // Same AST back (block equality ignores source spans)...
        prop_assert_eq!(&parsed.functions[0], &generated);
        // ...and the printed form is already the fixed point.
        let reprinted = pretty_program(&parsed);
        let reparsed = parse_program(&reprinted).expect("fixed point parses");
        prop_assert_eq!(&reparsed.functions[0], &generated);
        prop_assert_eq!(pretty_program(&reparsed), reprinted);
    }
}
