#!/usr/bin/env bash
# End-to-end repository check: offline build, full test suite, and a
# smoke run of the CLI's observability surface on examples/fig1.mini.
# Run from anywhere; exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release

echo "== clippy =="
cargo clippy --workspace -- -D warnings

echo "== test =="
cargo test -q

echo "== test: fault injection (checker soundness) =="
cargo test -q -p pst-verify --features fault-inject
# The CLI's crash-journal e2e needs an injected fault to crash on; the
# daemon's deadline/overload/drain/chaos e2e needs the injectable stall.
cargo test -q -p pst-cli --features fault-inject
cargo test -q -p pst-serve --features fault-inject

echo "== doc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== smoke: pst regions =="
out=$(./target/release/pst regions examples/fig1.mini)
echo "$out" | grep -q "canonical regions" \
    || { echo "FAIL: regions output missing summary line"; exit 1; }

echo "== smoke: pst --metrics-json =="
metrics=$(mktemp)
trap 'rm -f "$metrics"' EXIT
./target/release/pst regions examples/fig1.mini --metrics-json "$metrics" >/dev/null

# The emitted JSON must parse and contain a cycle_equiv span with a
# nonzero duration plus the bracket-list counters. python3 doubles as
# an independent check that the hand-rolled emitter produces valid JSON.
python3 - "$metrics" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    report = json.load(f)

def find_span(spans, name):
    for s in spans:
        if s["name"] == name:
            return s
        found = find_span(s["children"], name)
        if found:
            return found
    return None

span = find_span(report["spans"], "cycle_equiv")
assert span is not None, "no cycle_equiv span in metrics report"
assert span["nanos"] > 0, "cycle_equiv span has zero duration"
assert report["counters"]["brackets_pushed"] > 0, "no bracket counters"
assert report["counters"]["brackets_pushed"] == report["counters"]["brackets_popped"]
print("metrics OK: cycle_equiv span with",
      report["counters"]["brackets_pushed"], "brackets pushed")
EOF

echo "== smoke: pst --canonicalize =="
# Malformed edge list: unreachable node 6, infinite loop 1<->2, two sinks.
canon=$(printf '0->1 1->2 2->1 0->3 3->4 0->5 6->3\n' \
    | ./target/release/pst --canonicalize - --paranoid)
echo "$canon" | grep -q "pruned unreachable node" \
    || { echo "FAIL: canonicalize did not report the unreachable node"; exit 1; }
echo "$canon" | grep -q "virtual loop exit" \
    || { echo "FAIL: canonicalize did not report the infinite loop"; exit 1; }
echo "$canon" | grep -q "merged exit" \
    || { echo "FAIL: canonicalize did not report the merged exits"; exit 1; }
echo "$canon" | grep -q "cross-checked against the slow-bracket oracle" \
    || { echo "FAIL: canonicalize skipped the oracle cross-check"; exit 1; }
echo "$canon" | grep -q "paranoid: all 7 invariant checkers passed" \
    || { echo "FAIL: --paranoid did not run the checker battery"; exit 1; }
echo "canonicalize OK"

echo "== smoke: pst fuzz (clean seeds, full checker battery) =="
# A fixed seed range through the whole pipeline with every pst-verify
# checker enabled must report zero violations and zero contained panics.
fuzzdir=$(mktemp -d)
trap 'rm -f "$metrics"; rm -rf "$fuzzdir"' EXIT
fuzz_out=$(./target/release/pst fuzz --seed-range 0..200 --budget-ms 2000 \
    --paranoid --out-dir "$fuzzdir") \
    || { echo "FAIL: clean fuzz run exited nonzero"; exit 1; }
echo "$fuzz_out" | grep -q "0 violations, 0 contained panics" \
    || { echo "FAIL: clean fuzz run reported failures: $fuzz_out"; exit 1; }
echo "fuzz clean OK"

echo "== smoke: pst fuzz --inject-fault (exit-code taxonomy) =="
# A deliberately injected fault must be caught by a checker (exit 3) and
# leave a minimized reproducer that re-runs through --canonicalize.
cargo build -q --release -p pst-cli --features fault-inject
set +e
./target/release/pst fuzz --seed-range 0..8 --inject-fault drop-phi-site \
    --out-dir "$fuzzdir/injected" >/dev/null 2>&1
code=$?
set -e
[ "$code" -eq 3 ] \
    || { echo "FAIL: injected fault should exit 3, got $code"; exit 1; }
repro=$(ls "$fuzzdir"/injected/*.edges 2>/dev/null | head -1)
[ -n "$repro" ] \
    || { echo "FAIL: injected fault left no minimized reproducer"; exit 1; }
./target/release/pst --canonicalize "$repro" >/dev/null \
    || { echo "FAIL: reproducer $repro does not re-run"; exit 1; }
echo "fault taxonomy OK ($(basename "$repro") reproduces)"

# The strong-control-dependence checkers must catch their own faults
# too: a spurious NTSCD dependence and a forged DOD witness each flag
# the pipeline (exit 3), proving the new oracles are not tautologies.
for fault in add-spurious-ntscd-dep forge-dod-witness; do
    set +e
    ./target/release/pst fuzz --seed-range 0..8 --inject-fault "$fault" \
        --out-dir "$fuzzdir/strong-$fault" >/dev/null 2>&1
    code=$?
    set -e
    [ "$code" -eq 3 ] \
        || { echo "FAIL: --inject-fault $fault should exit 3, got $code"; exit 1; }
done
echo "strong-CD fault taxonomy OK (ntscd and dod checkers fire)"

echo "== chaos: pst serve --inject-fault (daemon survives every fault class) =="
# The fault-inject daemon is its own chaos monkey: for every fault
# class, a 50-request mixed workload must yield structured envelopes
# only — dropped connections are reconnected, overload sheds are
# retried after the envelope's own backoff hint, and the daemon must
# survive to answer a final stats probe and exit 0 on shutdown.
for fault in panic slow drop-conn corrupt-snapshot; do
    python3 - "$fault" "$fuzzdir" <<'EOF'
import json, socket, subprocess, sys, time
fault, tmp = sys.argv[1], sys.argv[2]
cmd = ["./target/release/pst", "serve", "--listen", "127.0.0.1:0",
       "--workers", "2", "--inject-fault", fault]
if fault == "corrupt-snapshot":
    cmd += ["--cache-snapshot", f"{tmp}/chaos.snapshot", "--snapshot-every", "5"]
daemon = subprocess.Popen(cmd, stdout=subprocess.PIPE,
                          stderr=subprocess.DEVNULL, text=True)
addr = daemon.stdout.readline().strip().rsplit(" ", 1)[1]
host, port = addr.rsplit(":", 1)

def connect():
    s = socket.create_connection((host, int(port)), timeout=10)
    s.settimeout(10)
    return s, s.makefile("r")

sock, reader = connect()
answered = 0
for i in range(50):
    src = ("fn f(n) { x = %d; while (n > 0) { n = n - 1; x = x + n; } "
           "return x; }" % i)
    method = ["pst", "control_regions", "ssa", "lint"][i % 4]
    req = (json.dumps({"id": i, "method": method, "source": src}) + "\n").encode()
    for attempt in range(8):
        try:
            sock.sendall(req)
            line = reader.readline()
        except OSError:
            line = ""
        if not line:
            # drop-conn chaos hung up mid-request: the daemon must still
            # be alive, and a fresh connection must be accepted.
            assert daemon.poll() is None, f"{fault}: daemon died"
            sock, reader = connect()
            continue
        reply = json.loads(line)  # every reply is a structured envelope
        assert reply.get("id") == i, (fault, reply)
        if reply.get("ok") is False and reply["error"]["code"] == "overloaded":
            time.sleep(reply["error"].get("retry_after_ms", 10) / 1000)
            continue
        answered += 1
        break
    else:
        raise AssertionError(f"{fault}: request {i} never answered")
assert answered == 50, f"{fault}: only {answered} of 50 answered"
assert daemon.poll() is None, f"{fault}: daemon died during the batch"
sock.sendall(b'{"id":99,"method":"stats"}\n')
stats = json.loads(reader.readline())
assert stats["ok"], (fault, stats)
if fault == "slow":
    # The slowlog must have captured the injected stalls and attributed
    # them to the inject phase, not to compute.
    sock.sendall(b'{"id":101,"method":"slowlog"}\n')
    slow = json.loads(reader.readline())
    assert slow["ok"], (fault, slow)
    stalls = [e for e in slow["result"]["entries"]
              if e["phases"]["inject_nanos"] >= 40_000_000]
    assert stalls, (fault, slow["result"]["entries"])
sock.sendall(b'{"id":100,"method":"shutdown"}\n')
json.loads(reader.readline())
assert daemon.wait(timeout=10) == 0, f"{fault}: unclean exit"
print(f"chaos OK: {fault} — 50/50 structured replies, daemon survived")
EOF
done

# Rebuild the release binary without the test-only feature so later
# consumers of target/release/pst get the production configuration.
cargo build -q --release -p pst-cli

echo "== smoke: pst lint (examples corpus, JSON schema) =="
# Every example must lint to parseable JSON with the documented shape;
# clean inputs exit 0, inputs with findings exit 5, anything else fails.
lintjson=$(mktemp)
trap 'rm -f "$metrics" "$lintjson"; rm -rf "$fuzzdir"' EXIT
for mini in examples/*.mini; do
    set +e
    ./target/release/pst lint "$mini" --json > "$lintjson"
    code=$?
    set -e
    { [ "$code" -eq 0 ] || [ "$code" -eq 5 ]; } \
        || { echo "FAIL: pst lint $mini exited $code"; exit 1; }
    python3 - "$lintjson" "$mini" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    reports = json.load(f)
assert isinstance(reports, list) and reports, "lint JSON must be a nonempty array"
for r in reports:
    assert r["input"].startswith(sys.argv[2]), r["input"]
    assert r["rules_run"], "no rules ran"
    for d in r["diagnostics"]:
        assert d["rule"].startswith("PST-"), d["rule"]
        assert d["severity"] in ("info", "warning", "error"), d["severity"]
        assert isinstance(d["message"], str) and d["message"]
EOF
    echo "lint OK: $mini (exit $code)"
done

echo "== smoke: pst lint exit-code taxonomy (injected defects) =="
# The curated defective fixture must trip the engine: exit exactly 5,
# with the documented rule IDs among the findings.
set +e
defect_out=$(./target/release/pst lint examples/defects.mini --json)
code=$?
set -e
[ "$code" -eq 5 ] \
    || { echo "FAIL: lint on defects.mini should exit 5, got $code"; exit 1; }
for rule in PST-S001 PST-C002 PST-C101 PST-D001 PST-D002; do
    echo "$defect_out" | grep -q "\"$rule\"" \
        || { echo "FAIL: defects.mini did not trip $rule"; exit 1; }
done
# --allow must silence a rule; --deny escalates without changing the exit.
allow_out=$(./target/release/pst lint examples/defects.mini --json \
    --allow PST-D001 --allow PST-D002 --allow PST-S001 --allow PST-S002 \
    --allow PST-C002 --allow PST-C101 || true)
if echo "$allow_out" | grep -q '"PST-D001"'; then
    echo "FAIL: --allow PST-D001 did not silence the rule"; exit 1
fi
echo "lint taxonomy OK"

echo "== smoke: pst lint --edges (strong control dependence rules) =="
# The canonical DOD digraph must trip both graph-side C1xx rules: the
# 1<->2 cycle only exits through a virtual loop-exit edge (PST-C102)
# and branch 0 decides the order of nodes 1 and 2 (PST-C103).
dodgraph="$fuzzdir/dod.edges"
printf '0->1\n0->2\n1->2\n2->1\n' > "$dodgraph"
set +e
graph_out=$(./target/release/pst lint --edges "$dodgraph" --json)
code=$?
set -e
[ "$code" -eq 5 ] \
    || { echo "FAIL: lint --edges on the DOD graph should exit 5, got $code"; exit 1; }
for rule in PST-C102 PST-C103; do
    echo "$graph_out" | grep -q "\"$rule\"" \
        || { echo "FAIL: the DOD graph did not trip $rule"; exit 1; }
done
echo "graph lint OK (PST-C102 and PST-C103 fire)"

echo "== smoke: pst lint --explain (rule cards) =="
for rule in PST-C101 PST-C102 PST-C103; do
    explain_out=$(./target/release/pst lint --explain "$rule") \
        || { echo "FAIL: pst lint --explain $rule exited nonzero"; exit 1; }
    echo "$explain_out" | grep -q "severity:" \
        || { echo "FAIL: --explain $rule printed no severity"; exit 1; }
    echo "$explain_out" | grep -q "fix:" \
        || { echo "FAIL: --explain $rule printed no fix"; exit 1; }
done
set +e
./target/release/pst lint --explain PST-X999 >/dev/null 2>&1
code=$?
set -e
[ "$code" -eq 2 ] \
    || { echo "FAIL: --explain on an unknown rule should exit 2, got $code"; exit 1; }
echo "explain OK (cards print, unknown rule is a usage error)"

echo "== smoke: pst bench --quick (schema-validated report + trace) =="
benchdir=$(mktemp -d)
trap 'rm -f "$metrics" "$lintjson"; rm -rf "$fuzzdir" "$benchdir"' EXIT
./target/release/pst bench --quick --iters 3 --warmup 1 --label verify \
    --out "$benchdir/BENCH_verify.json" --trace-out "$benchdir/trace.json" \
    >/dev/null
# The report must parse, carry the versioned schema, keep its order
# statistics ordered, and account for every allocated byte; the Chrome
# trace must be well-formed trace_event JSON. python3 again doubles as
# an independent check of the hand-rolled emitter.
python3 - "$benchdir/BENCH_verify.json" "$benchdir/trace.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
assert report["schema_version"] == 2, report["schema_version"]
assert report["workloads"], "bench report has no workloads"
for w in report["workloads"]:
    assert w["phases"], f"{w['name']}: no phases"
    attributed = sum(p["alloc"]["bytes_total"] for p in w["phases"])
    assert attributed + w["alloc_unattributed_bytes"] \
        == w["alloc_total"]["bytes_total"], f"{w['name']}: attribution leak"
    for p in w["phases"]:
        t = p["time"]
        assert t["samples"] == 3, (w["name"], p["name"], t)
        assert t["min"] <= t["ci_lo"] <= t["median"] <= t["ci_hi"] <= t["max"], \
            (w["name"], p["name"], t)
        # Histogram-derived quantiles: ordered and inside the range.
        assert t["min"] <= t["p50"] <= t["p90"] <= t["p99"] <= t["max"], \
            (w["name"], p["name"], t)
assert report["obs"]["spans"], "no embedded observability spans"
# The strong-control-dependence family must be present with all three
# shapes, each timing the five dependence phases.
strong = [w for w in report["workloads"] if w["name"].startswith("controldep/strong")]
families = {w["name"].split("/")[1] for w in strong}
assert families == {"strong_random", "strong_irreducible", "strong_sccheavy"}, families
for w in strong:
    names = [p["name"] for p in w["phases"]]
    assert names == ["cd_fow", "cd_cfs", "cd_linear", "ntscd", "dod"], \
        (w["name"], names)
# The concurrent daemon workload must out-serve the sequential mix:
# shared-cache concurrency is the daemon's value proposition, so the
# throughput gauges are a gate, not a decoration.
gauges = report["obs"]["gauges"]
conc, seq = gauges["serve_conc_requests_per_sec"], gauges["serve_requests_per_sec"]
assert conc > seq, f"serve/conc8 must beat serve/mix6: {conc} <= {seq} req/s"
with open(sys.argv[2]) as f:
    trace = json.load(f)
events = trace["traceEvents"]
assert events, "empty Chrome trace"
assert all(e["ph"] == "X" and e["dur"] >= 0 for e in events), "bad trace event"
print("bench OK:", len(report["workloads"]), "workloads,",
      len(events), "trace events")
EOF

echo "== smoke: pst bench --compare (baseline gate) =="
# Gate the fresh quick run against the committed baseline. Thresholds
# are generous — hardware differs between machines; the CI-overlap rule
# and the absolute floors absorb noise, the ratio absorbs the rest.
./target/release/pst bench --compare benchmarks/BENCH_seed.json \
    --candidate "$benchdir/BENCH_verify.json" \
    --threshold 900 --alloc-threshold 400 \
    || { echo "FAIL: quick run regressed against benchmarks/BENCH_seed.json"; exit 1; }
# The gate itself must be able to fire: shrink every baseline number
# 100x and the same candidate must now fail with exit code 6.
python3 - "$benchdir/BENCH_verify.json" "$benchdir/BENCH_shrunk.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
def shrink_time(s):
    for k in ("min", "max", "median", "mad", "ci_lo", "ci_hi",
              "p50", "p90", "p99"):
        s[k] //= 100
    s["mean"] /= 100
def shrink_alloc(a):
    for k in ("allocs", "bytes_total", "peak_live_bytes"):
        a[k] //= 100
for w in report["workloads"]:
    shrink_time(w["total_time"])
    shrink_alloc(w["alloc_total"])
    for p in w["phases"]:
        shrink_time(p["time"])
        shrink_alloc(p["alloc"])
with open(sys.argv[2], "w") as f:
    json.dump(report, f)
EOF
set +e
./target/release/pst bench --compare "$benchdir/BENCH_shrunk.json" \
    --candidate "$benchdir/BENCH_verify.json" >/dev/null
code=$?
set -e
[ "$code" -eq 6 ] \
    || { echo "FAIL: injected 100x regression should exit 6, got $code"; exit 1; }
echo "bench gate OK (pass on committed baseline, exit 6 on injected regression)"

echo "== gate: no unwrap/expect in the request path =="
# Belt-and-suspenders for the in-source clippy denies
# (#![deny(clippy::unwrap_used, clippy::expect_used)] in pst-cli and
# pst-serve): non-test code in either crate must not call .unwrap() or
# .expect(. Test modules sit at the bottom of each file behind
# #[cfg(test)], so everything before that marker is production code.
unwraps=$(for f in crates/cli/src/*.rs crates/serve/src/*.rs; do
    awk -v file="$f" '/#\[cfg\(test\)\]/{intest=1}
        intest==0 && /\.unwrap\(\)|\.expect\(/{print file":"FNR": "$0}' "$f"
done)
[ -z "$unwraps" ] \
    || { echo "FAIL: unwrap/expect in the request path:"; echo "$unwraps"; exit 1; }
echo "unwrap gate OK"

echo "== smoke: pst serve (NDJSON round trip, cache hit, error envelope) =="
# Drive the daemon over stdin: the same pst query twice (second must be
# served from the session cache), one garbage line (must get a
# structured error envelope, not kill the daemon), then a clean
# shutdown. The metrics JSON must show the cache counters firing.
servemetrics="$benchdir/serve_metrics.json"
servereplies="$benchdir/serve_replies.ndjson"
printf '%s\n%s\n%s\nthis is not json\n%s\n' \
    '{"id":1,"method":"pst","source":"fn f(n) { s = 0; while (n > 0) { s = s + n; n = n - 1; } return s; }"}' \
    '{"id":2,"method":"lint","source":"fn f(n) { s = 0; while (n > 0) { s = s + n; n = n - 1; } return s; }"}' \
    '{"id":3,"method":"controldep","source":"fn f(n) { s = 0; while (n > 0) { s = s + n; n = n - 1; } return s; }"}' \
    '{"id":4,"method":"shutdown"}' \
    | ./target/release/pst serve --metrics-json "$servemetrics" > "$servereplies" \
    || { echo "FAIL: serve daemon exited nonzero"; exit 1; }
python3 - "$servemetrics" "$servereplies" <<'EOF'
import json, sys
with open(sys.argv[2]) as f:
    replies = [json.loads(l) for l in f if l.strip()]
assert len(replies) == 5, replies
assert replies[0]["ok"] and not replies[0]["cached"], replies[0]
# Same source, different method: unit cache hit, stage recompute.
assert replies[1]["ok"] and replies[1]["unit"] == replies[0]["unit"], replies[1]
# Strong control dependence on the same unit: another cache hit; the
# while loop makes the NTSCD relation non-empty and the DOD search must
# come back empty-and-complete on a valid CFG.
assert replies[2]["ok"] and replies[2]["unit"] == replies[0]["unit"], replies[2]
cd = replies[2]["result"][0]
assert cd["ntscd_deps"] > 0, cd
assert cd["dod_witnesses"] == [] and cd["dod_complete"], cd
assert cd["strong_regions"] > 0 and cd["classic_deps"] >= 0, cd
assert not replies[3]["ok"] and replies[3]["error"]["code"] == "parse_error", replies[3]
assert replies[4]["ok"] and replies[4]["result"]["stopping"], replies[4]
with open(sys.argv[1]) as f:
    counters = json.load(f)["counters"]
assert counters["serve_requests"] == 5, counters
assert counters["serve_cache_miss"] == 1, counters
assert counters["serve_cache_hit"] == 2, counters
print("serve OK: unit", replies[0]["unit"], "answered, cached, and shut down")
EOF

echo "== smoke: pst serve --cache-snapshot (crash-safe warm restart) =="
# First life computes a unit and drains (which flushes a snapshot);
# the second life's very first repeat query must be a cache hit.
snap="$benchdir/cache.snapshot"
printf '%s\n%s\n' \
    '{"id":1,"method":"pst","source":"fn g(n) { return n; }"}' \
    '{"id":2,"method":"drain"}' \
    | ./target/release/pst serve --cache-snapshot "$snap" >/dev/null \
    || { echo "FAIL: snapshot-writing serve run exited nonzero"; exit 1; }
[ -s "$snap" ] || { echo "FAIL: no snapshot written on drain"; exit 1; }
warm=$(printf '%s\n%s\n' \
    '{"id":1,"method":"pst","source":"fn g(n) { return n; }"}' \
    '{"id":2,"method":"shutdown"}' \
    | ./target/release/pst serve --cache-snapshot "$snap") \
    || { echo "FAIL: warm-restart serve run exited nonzero"; exit 1; }
echo "$warm" | head -1 | grep -q '"cached":true' \
    || { echo "FAIL: warm restart did not hit the restored cache"; exit 1; }
# A truncated snapshot is a logged cold start, never a dead daemon.
head -c 20 "$snap" > "$snap.trunc" && mv "$snap.trunc" "$snap"
cold=$(printf '%s\n%s\n' \
    '{"id":1,"method":"pst","source":"fn g(n) { return n; }"}' \
    '{"id":2,"method":"shutdown"}' \
    | ./target/release/pst serve --cache-snapshot "$snap") \
    || { echo "FAIL: serve died on a truncated snapshot"; exit 1; }
echo "$cold" | head -1 | grep -q '"cached":false' \
    || { echo "FAIL: truncated snapshot should mean a cold start"; exit 1; }
echo "snapshot OK: warm restart hits, truncation degrades to cold start"

echo "== smoke: pst serve live telemetry (metrics, exposition, slowlog, pst top) =="
# A TCP daemon with a 100ms window and an HTTP scrape endpoint: the
# metrics RPC must report per-method windowed series, the text
# exposition must be well-typed with monotone lifetime counters across
# two scrapes, the windowed quantiles must decay once traffic stops,
# the slowlog must come back ordered and phase-attributed, and
# `pst top --once --format json` must snapshot the same daemon.
python3 - <<'EOF'
import json, socket, subprocess, time
cmd = ["./target/release/pst", "serve", "--listen", "127.0.0.1:0",
       "--metrics-listen", "127.0.0.1:0", "--metrics-window-ms", "100",
       "--workers", "2"]
daemon = subprocess.Popen(cmd, stdout=subprocess.PIPE,
                          stderr=subprocess.DEVNULL, text=True)
addr = daemon.stdout.readline().strip().rsplit(" ", 1)[1]
maddr = daemon.stdout.readline().strip().rsplit(" ", 1)[1]
host, port = addr.rsplit(":", 1)
mhost, mport = maddr.rsplit(":", 1)

sock = socket.create_connection((host, int(port)), timeout=10)
sock.settimeout(10)
reader = sock.makefile("r")
def ask(obj):
    sock.sendall((json.dumps(obj) + "\n").encode())
    return json.loads(reader.readline())

for i in range(6):
    rep = ask({"id": i, "method": "pst",
               "source": "fn f(n) { s = 0; while (n > 0) "
                         "{ s = s + n; n = n - 1; } return s; }"})
    assert rep["ok"], rep

m1 = ask({"id": 90, "method": "metrics"})
assert m1["ok"], m1
pst1 = m1["result"]["methods"]["pst"]
assert pst1["requests_total"] == 6, pst1
assert pst1["window"]["requests"] == 6, pst1
assert pst1["window"]["cache_hits"] == 5, pst1
assert pst1["window"]["p99_nanos"] > 0, pst1

def scrape():
    ms = socket.create_connection((mhost, int(mport)), timeout=10)
    ms.settimeout(10)
    ms.sendall(b"GET /metrics HTTP/1.0\r\n\r\n")
    data = b""
    while True:
        chunk = ms.recv(65536)
        if not chunk:
            break
        data += chunk
    ms.close()
    head, _, body = data.decode().partition("\r\n\r\n")
    assert head.startswith("HTTP/1.0 200 OK"), head
    assert "text/plain; version=0.0.4" in head, head
    return body

def parse_expo(body):
    types, samples = {}, {}
    for line in body.splitlines():
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ")
            types[name] = kind
        elif line:
            key, _, value = line.rpartition(" ")
            samples[key] = int(value)
    return types, samples

t1, s1 = parse_expo(scrape())
for fam, kind in [("pst_serve_requests_total", "counter"),
                  ("pst_serve_errors_total", "counter"),
                  ("pst_serve_cache_hits_total", "counter"),
                  ("pst_serve_latency_nanos", "summary"),
                  ("pst_serve_shard_requests_total", "counter"),
                  ("pst_serve_shed_total", "counter"),
                  ("pst_serve_conn_errors_total", "counter"),
                  ("pst_serve_in_flight", "gauge"),
                  ("pst_serve_workers", "gauge"),
                  ("pst_serve_draining", "gauge")]:
    assert t1.get(fam) == kind, (fam, t1)

rep = ask({"id": 91, "method": "pst", "source": "fn g(n) { return n; }"})
assert rep["ok"], rep
_, s2 = parse_expo(scrape())
monotone = [k for k in s1
            if k.split("{")[0].endswith(("_total", "_sum", "_count"))]
assert monotone, s1
for k in monotone:
    assert s2.get(k, 0) >= s1[k], (k, s1[k], s2.get(k))
key = 'pst_serve_requests_total{method="pst"}'
assert s2[key] == s1[key] + 1 == 7, (s1[key], s2[key])

# Quantiles come from the windowed ring: once traffic stops and the
# ring's horizon passes, the window empties while totals persist.
time.sleep(1.2)
m2 = ask({"id": 92, "method": "metrics"})
pst2 = m2["result"]["methods"]["pst"]
assert pst2["requests_total"] == 7, pst2
assert pst2["window"]["requests"] == 0, pst2
assert pst2["window"]["p99_nanos"] == 0, pst2

sl = ask({"id": 93, "method": "slowlog"})
assert sl["ok"], sl
entries = sl["result"]["entries"]
assert entries, sl
totals = [e["total_nanos"] for e in entries]
assert totals == sorted(totals, reverse=True), totals
for e in entries:
    assert e["total_nanos"] >= e["phases"]["compute_nanos"], e

top = subprocess.run(["./target/release/pst", "top", "--addr", addr,
                      "--once", "--format", "json"],
                     capture_output=True, text=True, timeout=30)
assert top.returncode == 0, top.stderr
snap = json.loads(top.stdout)
assert snap["metrics"]["methods"]["pst"]["requests_total"] == 7, snap
assert snap["stats"]["workers"] == 2, snap

ask({"id": 99, "method": "shutdown"})
assert daemon.wait(timeout=10) == 0, "unclean exit"
print("live telemetry OK: typed+monotone exposition, window decay,",
      "ordered slowlog,", len(entries), "entries, top snapshot")
EOF

echo "== gate: every counter/histogram name is documented =="
# Metric names drift silently: a new counter!() lands, the docs don't.
# Grep every counter!/histogram! literal out of non-test source (cut at
# the first test-module attribute, strip comment lines so doc examples
# don't count) and require each name to appear in docs/OBSERVABILITY.md.
python3 - <<'EOF'
import re, pathlib
names = {}
for p in sorted(pathlib.Path("crates").glob("*/src/**/*.rs")):
    text = p.read_text()
    m = re.search(r'#\[cfg\([^)]*test', text)
    if m:
        text = text[:m.start()]
    code = "\n".join(l for l in text.splitlines()
                     if not l.lstrip().startswith("//"))
    for m in re.finditer(r'(?:counter|histogram)!\(\s*"([a-z0-9_]+)"', code):
        names.setdefault(m.group(1), str(p))
doc = pathlib.Path("docs/OBSERVABILITY.md").read_text()
missing = {n: f for n, f in names.items() if n not in doc}
assert not missing, \
    f"metric names missing from docs/OBSERVABILITY.md: {missing}"
print(f"metric-name gate OK: {len(names)} names, all documented")
EOF

echo "== smoke: structured event journal (JSONL schema) =="
# A journaled quick bench must emit a well-formed JSONL stream bracketed
# by run_start/run_end, with one trace id and contiguous sequence numbers.
PST_TRACE_SEED=1 ./target/release/pst bench --quick --iters 2 --warmup 0 \
    --label journal --out "$benchdir/BENCH_j1.json" \
    --journal "$benchdir/j1.jsonl" >/dev/null
PST_TRACE_SEED=2 ./target/release/pst bench --quick --iters 2 --warmup 0 \
    --label journal2 --out "$benchdir/BENCH_j2.json" \
    --journal "$benchdir/j2.jsonl" >/dev/null
python3 - "$benchdir/j1.jsonl" <<'EOF'
import json, sys
records = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
assert records, "empty journal"
for i, r in enumerate(records):
    assert r["seq"] == i, (i, r)
    assert r["trace"] == records[0]["trace"], r
    assert r["level"] in ("info", "warn", "error"), r
    assert r["type"] in ("run_start", "run_end", "unit_summary",
                         "lint_finding", "fuzz_crash", "bench_verdict",
                         "slow_request"), r
assert records[0]["type"] == "run_start", records[0]
assert records[0]["data"]["command"] == "bench", records[0]
assert records[-1]["type"] == "run_end", records[-1]
assert records[-1]["data"]["exit_code"] == 0, records[-1]
units = [r for r in records if r["type"] == "unit_summary"]
assert units, "no per-workload unit summaries journaled"
print("journal OK:", len(records), "records,", len(units), "unit summaries")
EOF

echo "== smoke: pst obs (fleet aggregation over two journals) =="
./target/release/pst obs "$benchdir/j1.jsonl" "$benchdir/j2.jsonl" \
    --format json > "$benchdir/fleet.json"
python3 - "$benchdir/fleet.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    fleet = json.load(f)
assert len(fleet["traces"]) == 2, fleet["traces"]
assert fleet["event_counts"]["run_start"] == 2, fleet["event_counts"]
assert fleet["event_counts"]["run_end"] == 2, fleet["event_counts"]
top = fleet["top_units"]
assert top, "no aggregated units"
assert all(a["nanos"] >= b["nanos"] for a, b in zip(top, top[1:])), top
# Every workload ran in both journals, so merged counts are even.
assert all(u["count"] % 2 == 0 for u in top), top
print("obs OK:", len(top), "units over", len(fleet["traces"]), "traces")
EOF

echo "== verify: all checks passed =="
