//! Sparse data-flow analysis with quick propagation graphs (§6.2): for
//! each variable, bypass every SESE region that never touches it, solve
//! reaching definitions on the tiny residual graph, and check the result
//! against the full iterative solution.
//!
//! ```text
//! cargo run -p pst-integration --example dataflow_sparsity
//! ```

use pst_core::ProgramStructureTree;
use pst_dataflow::{solve_iterative, QpgContext, SingleVariableReachingDefs};
use pst_lang::{lower_function, parse_program, VarId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = "
        fn pipeline(n) {
            a = 1;
            while (n > 0) { b = b + n; n = n - 1; }
            for (i = 0; i < 8; i = i + 1) { c = c * 2; }
            if (a > 0) { d = b; } else { d = c; }
            a = a + d;
            return a;
        }";
    let program = parse_program(source)?;
    let lowered = lower_function(&program.functions[0])?;
    let pst = ProgramStructureTree::build(&lowered.cfg);
    let ctx = QpgContext::new(&lowered.cfg, &pst).expect("PST matches its CFG");

    println!(
        "CFG: {} blocks / {} statements; PST: {} regions\n",
        lowered.cfg.node_count(),
        lowered.statement_count(),
        pst.canonical_region_count(),
    );
    println!("per-variable quick propagation graphs:");
    for v in 0..lowered.var_count() {
        let var = VarId::from_index(v);
        let problem = SingleVariableReachingDefs::new(&lowered, var);
        let qpg = ctx.build_from_sites(problem.sites()).expect("PST matches its CFG");
        let sparse = ctx.solve(&qpg, &problem).expect("PST matches its CFG");
        let full = solve_iterative(&lowered.cfg, &problem);
        assert_eq!(sparse, full, "QPG solution must equal the full solution");
        println!(
            "  {:>4}: {} defs, QPG {:>2} of {} nodes ({:>5.1}%) — solution verified",
            lowered.var_name(var),
            problem.sites().len(),
            qpg.node_count(),
            lowered.cfg.node_count(),
            100.0 * qpg.node_count() as f64 / lowered.cfg.node_count() as f64,
        );
    }
    Ok(())
}
