//! Structure explorer: dump a CFG in Graphviz DOT format with nodes
//! colored by their innermost SESE region and edges labelled with their
//! cycle-equivalence class, plus the PST as a tree.
//!
//! ```text
//! cargo run -p pst-integration --example structure_explorer [file.mini]
//! # pipe the first chunk into `dot -Tsvg` to render it
//! ```

use pst_cfg::graph_to_dot_with;
use pst_core::ProgramStructureTree;
use pst_lang::{lower_function, parse_program};

const DEFAULT: &str = "
    fn explore(n, mode) {
        s = 0;
        switch (mode) {
            case 0: { s = n; }
            case 1: { while (n > 0) { s = s + n; n = n - 1; } }
            default: { s = 0 - n; }
        }
        do { s = s / 2; } while (s > 100);
        return s;
    }";

const PALETTE: &[&str] = &[
    "lightblue",
    "lightyellow",
    "lightpink",
    "lightgreen",
    "lavender",
    "mistyrose",
    "honeydew",
    "thistle",
    "wheat",
    "azure",
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(path)?,
        None => DEFAULT.to_string(),
    };
    let program = parse_program(&source)?;
    for f in &program.functions {
        let lowered = lower_function(f)?;
        let pst = ProgramStructureTree::build(&lowered.cfg);
        let detection = pst.detection().expect("freshly built tree");

        let dot = graph_to_dot_with(
            lowered.cfg.graph(),
            |n| {
                let region = pst.region_of_node(n);
                let color = PALETTE[region.index() % PALETTE.len()];
                format!("label=\"{n}\\n{region}\", style=filled, fillcolor={color}")
            },
            |e| {
                let class = detection.cycle_equiv.class(e);
                format!("label=\"ce{class}\"")
            },
        );
        println!(
            "// function `{}` — {} canonical regions",
            f.name,
            pst.canonical_region_count()
        );
        println!("{dot}");
        println!("/* program structure tree:\n{}*/", pst.render());
    }
    Ok(())
}
