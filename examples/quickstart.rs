//! Quickstart: parse a function, build its Program Structure Tree, and
//! print what the paper's analyses see.
//!
//! ```text
//! cargo run -p pst-integration --example quickstart
//! ```

use pst_core::{classify_regions, ControlRegions, ProgramStructureTree, PstStats};
use pst_lang::{lower_function, parse_program};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = "
        fn gcd_like(a, b) {
            while (a != b) {
                if (a > b) {
                    a = a - b;
                } else {
                    b = b - a;
                }
            }
            return a;
        }";
    let program = parse_program(source)?;
    let lowered = lower_function(&program.functions[0])?;
    println!("function `{}`:", lowered.name);
    println!(
        "  CFG: {} blocks, {} edges",
        lowered.cfg.node_count(),
        lowered.cfg.edge_count()
    );

    // The paper's core structure: canonical SESE regions nested in a tree.
    let pst = ProgramStructureTree::build(&lowered.cfg);
    println!("\nprogram structure tree:\n{}", pst.render());

    let stats = PstStats::of(&pst);
    println!(
        "{} canonical regions, max depth {}, average depth {:.2}",
        stats.region_count,
        stats.max_depth,
        stats.average_depth()
    );

    // What kind of structure is each region?
    let kinds = classify_regions(&lowered.cfg, &pst);
    for r in pst.regions() {
        println!("  {r}: {}", kinds.kind(r));
    }
    println!(
        "completely structured: {}",
        kinds.is_completely_structured()
    );

    // Control regions (§5): nodes with identical control dependences.
    let cr = ControlRegions::compute(&lowered.cfg);
    println!("\ncontrol regions ({} classes):", cr.num_classes());
    for (class, nodes) in cr.groups().iter().enumerate() {
        let names: Vec<String> = nodes.iter().map(|n| n.to_string()).collect();
        println!("  class {class}: {}", names.join(", "));
    }
    Ok(())
}
