//! Control regions in linear time (§5): partition the blocks of a
//! procedure by "executes under exactly the same conditions" — the
//! grouping used by global instruction schedulers — and confirm the O(E)
//! algorithm against both classical baselines.
//!
//! ```text
//! cargo run -p pst-integration --example control_regions
//! ```

use pst_controldep::{cfs_control_regions, fow_control_regions, ControlDependence};
use pst_core::ControlRegions;
use pst_lang::{lower_function, parse_program};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = "
        fn schedule_me(p, q) {
            a = p + 1;
            if (p > 0) {
                b = a * 2;
                if (q > 0) { c = b + 1; }
                d = b * 3;
            }
            e = a - 1;
            return e;
        }";
    let program = parse_program(source)?;
    let lowered = lower_function(&program.functions[0])?;

    // The O(E) algorithm: node-expanded cycle equivalence (Theorems 7+8).
    let fast = ControlRegions::compute(&lowered.cfg);
    // The O(N·E) baselines agree exactly.
    assert_eq!(fast, fow_control_regions(&lowered.cfg));
    assert_eq!(fast, cfs_control_regions(&lowered.cfg));

    println!("control regions ({} classes):", fast.num_classes());
    for (class, nodes) in fast.groups().iter().enumerate() {
        let mut stmts = Vec::new();
        for &n in nodes {
            for s in &lowered.blocks[n.index()].stmts {
                stmts.push(s.text.clone());
            }
        }
        println!("  class {class}: blocks {nodes:?}");
        if !stmts.is_empty() {
            println!("    statements scheduled together: {}", stmts.join("; "));
        }
    }

    // The underlying relation, for the curious.
    let cd = ControlDependence::compute(&lowered.cfg);
    println!(
        "\ncontrol-dependence relation size: {} (virtual edge {})",
        cd.relation_size(),
        cd.virtual_edge()
    );
    Ok(())
}
