//! Region scheduling (the paper's §5 motivation, after Gupta & Soffa):
//! control regions group the blocks that execute under exactly the same
//! conditions, so a global scheduler may move statements freely between
//! them without adding or removing executions.
//!
//! This example computes control regions in O(E), then reports, for every
//! statement, the set of other blocks it could legally be scheduled into
//! (ignoring data dependences — the control-correctness half of the
//! problem, which is what control regions answer).
//!
//! ```text
//! cargo run -p pst-integration --example region_scheduling
//! ```

use pst_core::ControlRegions;
use pst_lang::{lower_function, parse_program};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = "
        fn kernel(p, q, n) {
            a = p * 2;
            if (p > 0) {
                b = a + 1;
                while (n > 0) {
                    c = c + b;
                    n = n - 1;
                }
                d = b * b;
            }
            e = a - 1;
            return e;
        }";
    let program = parse_program(source)?;
    let lowered = lower_function(&program.functions[0])?;
    let regions = ControlRegions::compute(&lowered.cfg);

    println!(
        "{} blocks fall into {} control regions:\n",
        lowered.cfg.node_count(),
        regions.num_classes()
    );
    for (class, nodes) in regions.groups().iter().enumerate() {
        println!("scheduling region {class}:");
        let mut any = false;
        for &node in nodes {
            for stmt in &lowered.blocks[node.index()].stmts {
                println!("    [{node}] {}", stmt.text);
                any = true;
            }
        }
        if !any {
            println!("    (control operators only)");
        }
        if nodes.len() > 1 {
            let labels: Vec<String> = nodes.iter().map(|n| n.to_string()).collect();
            println!(
                "  -> statements above may move freely among blocks {{{}}}",
                labels.join(", ")
            );
        }
        println!();
    }

    // Sanity: statements in the same region execute equally often, so
    // e.g. `a = p * 2` and `e = a - 1` are mutually schedulable, while the
    // loop body is its own world.
    let a_block = lowered
        .cfg
        .graph()
        .nodes()
        .find(|&n| lowered.block_defines(n, lowered.var_id("a").unwrap()))
        .expect("a's block");
    let e_block = lowered
        .cfg
        .graph()
        .nodes()
        .find(|&n| lowered.block_defines(n, lowered.var_id("e").unwrap()))
        .expect("e's block");
    assert!(regions.same_region(a_block, e_block));
    println!("checked: `a = p * 2` and `e = a - 1` share a scheduling region.");
    Ok(())
}
