//! SSA construction the paper's way (§6.1): place φ-functions per SESE
//! region, compare against the classical whole-procedure IDF placement,
//! and print the renamed program.
//!
//! ```text
//! cargo run -p pst-integration --example ssa_construction
//! ```

use pst_core::{collapse_all, ProgramStructureTree};
use pst_lang::{lower_function, parse_program, VarId};
use pst_ssa::{place_phis_cytron, place_phis_pst, rename};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = "
        fn sum_of_odds(n) {
            s = 0;
            i = 0;
            while (i < n) {
                if (i % 2 == 1) {
                    s = s + i;
                }
                i = i + 1;
            }
            return s;
        }";
    let program = parse_program(source)?;
    let lowered = lower_function(&program.functions[0])?;
    let pst = ProgramStructureTree::build(&lowered.cfg);
    let collapsed = collapse_all(&lowered.cfg, &pst);

    // Divide-and-conquer φ-placement over the PST ...
    let sparse = place_phis_pst(&lowered, &pst, &collapsed)?;
    // ... equals the classical iterated-dominance-frontier placement
    // (the paper's Theorem 9).
    let baseline = place_phis_cytron(&lowered);
    assert_eq!(baseline, sparse.placement);

    println!("φ-functions per variable (regions examined / total):");
    for v in 0..lowered.var_count() {
        let var = VarId::from_index(v);
        println!(
            "  {:>4}: {} φ(s), examined {}/{} regions",
            lowered.var_name(var),
            sparse.placement.phis_of(var).len(),
            sparse.regions_examined[v],
            sparse.total_regions,
        );
    }

    let ssa = rename(&lowered, &baseline)?;
    println!("\nrenamed program ({} φ-functions):", ssa.total_phis());
    for node in lowered.cfg.graph().nodes() {
        println!("  block {node}:");
        for phi in &ssa.phi_nodes[node.index()] {
            let args: Vec<String> = phi
                .args
                .iter()
                .map(|(p, v)| format!("{}_{v} from {p}", lowered.var_name(phi.var)))
                .collect();
            println!(
                "    {}_{} = φ({})",
                lowered.var_name(phi.var),
                phi.result,
                args.join(", ")
            );
        }
        for (stmt, info) in ssa.statements[node.index()]
            .iter()
            .zip(&lowered.blocks[node.index()].stmts)
        {
            let uses: Vec<String> = stmt
                .uses
                .iter()
                .map(|(u, v)| format!("{}_{v}", lowered.var_name(*u)))
                .collect();
            match stmt.def {
                Some((d, v)) => println!(
                    "    {}_{v} <- [{}]   // {}",
                    lowered.var_name(d),
                    uses.join(", "),
                    info.text
                ),
                None => println!("    use [{}]   // {}", uses.join(", "), info.text),
            }
        }
    }
    Ok(())
}
