//! Incremental PST maintenance (paper §6.3: "the PST can be used to
//! isolate regions of the graph where information must be recomputed").
//!
//! Simulates an editing session: a CFG grows one edge at a time, and after
//! every insertion the PST is spliced locally instead of rebuilt. The
//! fraction of nodes inside the recomputed region shows how local the
//! update stayed; each spliced tree is checked against a from-scratch
//! rebuild.
//!
//! ```text
//! cargo run -p pst-integration --example incremental_updates
//! ```

use pst_cfg::NodeId;
use pst_core::{insert_edge, ProgramStructureTree};
use pst_lang::{lower_function, parse_program};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A procedure with several independent loops: edits inside one loop
    // must not disturb the others.
    let source = "
        fn editable(n) {
            a = 0;
            while (n > 0) { a = a + n; n = n - 1; }
            b = 0;
            while (a > 0) { b = b + a; a = a - 2; }
            c = 0;
            while (b > 0) { c = c + b; b = b / 2; }
            return c;
        }";
    let program = parse_program(source)?;
    let lowered = lower_function(&program.functions[0])?;
    let mut cfg = lowered.cfg.clone();
    let mut pst = ProgramStructureTree::build(&cfg);
    println!(
        "initial: {} blocks, {} regions",
        cfg.node_count(),
        pst.canonical_region_count()
    );

    // Find the three loop-body blocks (targets of backedges).
    let dfs = pst_cfg::Dfs::new(cfg.graph(), cfg.entry());
    let backedge_sources: Vec<NodeId> = cfg
        .graph()
        .edges()
        .filter(|&e| dfs.edge_kind(e) == Some(pst_cfg::DirectedEdgeKind::Back))
        .map(|e| cfg.graph().source(e))
        .collect();
    println!("editing inside {} loops…\n", backedge_sources.len());

    for (step, &body) in backedge_sources.iter().enumerate() {
        // "Edit": add a self-loop inside this loop's body (think: the user
        // wrapped a statement in a retry).
        let grown = insert_edge(&cfg, &pst, body, body)?;
        let fraction = grown.rebuilt_nodes as f64 / grown.cfg.node_count() as f64;
        println!(
            "edit {}: +{} -> {}   recomputed {:>2} of {} nodes ({:.0}%)",
            step + 1,
            body,
            body,
            grown.rebuilt_nodes,
            grown.cfg.node_count(),
            100.0 * fraction
        );
        // The spliced tree is exactly what a full rebuild would produce.
        let fresh = ProgramStructureTree::build(&grown.cfg);
        assert_eq!(grown.pst.signature(), fresh.signature());
        cfg = grown.cfg;
        pst = grown.pst;
    }
    println!(
        "\nfinal: {} regions — every splice verified against a full rebuild.",
        pst.canonical_region_count()
    );
    Ok(())
}
