//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach a registry, so this vendored crate
//! re-implements the slice of `proptest 1.x` the workspace's property
//! tests use: the [`Strategy`](strategy::Strategy) trait with `prop_map` / `prop_flat_map` /
//! `prop_recursive` / `boxed`, range and tuple strategies, collection /
//! sample / option helpers, [`strategy::Union`], and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_oneof!`] macros.
//!
//! Differences from upstream, deliberately accepted:
//! - **No shrinking.** A failing case panics with the standard assert
//!   message; rerun with the printed case number for context.
//! - **Deterministic seeding.** Each test derives its RNG seed from the
//!   test's name, so runs are reproducible without a regressions file
//!   (`*.proptest-regressions` files are ignored).
//! - `PROPTEST_CASES` in the environment overrides the per-test case
//!   count, which keeps CI time tunable.

#![forbid(unsafe_code)]

pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// What `use proptest::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let cases = $crate::test_runner::effective_cases(config.cases);
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..cases {
                let run = || {
                    $(let $pat =
                        $crate::strategy::Strategy::generate(&{ $strat }, &mut rng);)*
                    $body
                };
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(run),
                );
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest case {case}/{cases} of `{}` failed",
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}
