//! The [`Strategy`] trait and its combinators.

use std::rc::Rc;

use crate::test_runner::TestRng;
use rand::Rng as _;

/// A generator of values of one type.
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy simply produces a fresh value from the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// out of it (dependent generation).
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Builds a recursive strategy: `self` is the leaf case and
    /// `recurse` wraps an inner strategy into a branch case. `depth`
    /// bounds nesting; the size-tuning parameters of upstream proptest
    /// are accepted and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf: BoxedStrategy<Self::Value> = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let branch = recurse(current).boxed();
            // Mix leaves back in so trees vary in depth, with branches
            // favoured 2:1 to keep generated structures interesting.
            current = Union::new(vec![leaf.clone(), branch.clone(), branch]).boxed();
        }
        current
    }

    /// Type-erases the strategy behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A clonable, type-erased strategy handle (upstream: `BoxedStrategy`).
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among several strategies of the same value type.
pub struct Union<S> {
    options: Vec<S>,
}

impl<S: Strategy> Union<S> {
    /// Builds a union; panics if `options` is empty.
    pub fn new<I: IntoIterator<Item = S>>(options: I) -> Self {
        let options: Vec<S> = options.into_iter().collect();
        assert!(!options.is_empty(), "Union::new requires at least one option");
        Union { options }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let i = rng.rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
