//! Sampling strategies (`proptest::sample`).

use crate::collection::SizeRange;
use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng as _;

/// Picks one element of `values` uniformly.
pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
    assert!(!values.is_empty(), "select requires a non-empty vec");
    Select { values }
}

/// See [`select`].
pub struct Select<T: Clone> {
    values: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.rng.gen_range(0..self.values.len());
        self.values[i].clone()
    }
}

/// Picks an order-preserving subsequence of `values` whose length lies
/// in `size`.
pub fn subsequence<T: Clone>(values: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
    Subsequence {
        values,
        size: size.into(),
    }
}

/// See [`subsequence`].
pub struct Subsequence<T: Clone> {
    values: Vec<T>,
    size: SizeRange,
}

impl<T: Clone> Strategy for Subsequence<T> {
    type Value = Vec<T>;
    fn generate(&self, rng: &mut TestRng) -> Vec<T> {
        let n = self.values.len();
        let k = self.size.sample(rng).min(n);
        // Partial Fisher–Yates over the index set, then restore order.
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = rng.rng.gen_range(i..n);
            idx.swap(i, j);
        }
        let mut chosen = idx[..k].to_vec();
        chosen.sort_unstable();
        chosen.into_iter().map(|i| self.values[i].clone()).collect()
    }
}
