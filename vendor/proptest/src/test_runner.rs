//! Test configuration and the per-test RNG.

use rand::rngs::StdRng;
use rand::SeedableRng as _;

/// Per-block configuration, mirroring the `proptest!` config attribute.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Applies the `PROPTEST_CASES` environment override, if any.
pub fn effective_cases(configured: u32) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => v.parse().unwrap_or(configured),
        Err(_) => configured,
    }
}

/// The RNG handed to strategies. Seeded from the test's name so every
/// run of a given test generates the same case sequence.
pub struct TestRng {
    pub(crate) rng: StdRng,
}

impl TestRng {
    /// Deterministic RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name: stable across runs and platforms.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(h),
        }
    }
}
