//! Collection strategies (`proptest::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng as _;

/// A range of collection sizes. Converts from the forms the workspace
/// uses: `lo..hi` (exclusive), `lo..=hi`, and an exact `usize`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl SizeRange {
    pub(crate) fn sample(self, rng: &mut TestRng) -> usize {
        rng.rng.gen_range(self.lo..=self.hi_inclusive)
    }
}

/// Generates `Vec`s whose length lies in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
