//! Option strategies (`proptest::option`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng as _;

/// Generates `Some` from `inner` three times out of four, else `None`
/// (upstream's default weighting).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.rng.gen_bool(0.75) {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}
