//! Offline stand-in for the `criterion` crate.
//!
//! Implements just enough of criterion's surface for this workspace's
//! benches to compile and produce useful numbers offline: benchmark
//! groups, `bench_function` / `bench_with_input`, `Bencher::iter`,
//! [`black_box`], [`BenchmarkId`], [`Throughput`], and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple — a short warm-up, then
//! `sample_size` timed samples of an adaptively chosen batch size — and
//! reports median ns/iter to stdout. There are no plots, no statistics
//! beyond min/median/max, and no saved baselines.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of the standard optimizer barrier.
pub use std::hint::black_box;

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup {name}");
        BenchmarkGroup {
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, f);
        self
    }
}

/// A group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&id.0, self.sample_size, |b| f(b, input));
        self
    }

    /// Benchmarks `f` under a plain name.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, f);
        self
    }

    /// Ends the group (a no-op; output is printed as benchmarks run).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Just `parameter`.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Units processed per iteration (accepted, not reported).
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Times closures handed to it by the benchmark body.
pub struct Bencher {
    batch: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, recording one sample of `batch` iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.batch {
            black_box(routine());
        }
        self.samples.push(start.elapsed());
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    // Calibrate: grow the batch until one sample takes >= 1 ms, so very
    // fast routines still get a measurable signal.
    let mut batch = 1u64;
    loop {
        let mut b = Bencher {
            batch,
            samples: Vec::new(),
        };
        f(&mut b);
        let elapsed = b.samples.first().copied().unwrap_or_default();
        if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
            break;
        }
        batch *= 4;
    }
    let mut b = Bencher {
        batch,
        samples: Vec::with_capacity(sample_size),
    };
    for _ in 0..sample_size {
        f(&mut b);
    }
    let mut per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|d| d.as_nanos() as f64 / batch as f64)
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter.first().copied().unwrap_or(0.0);
    let max = per_iter.last().copied().unwrap_or(0.0);
    println!("  {name:<40} median {median:>12.1} ns/iter  (min {min:.1}, max {max:.1}, x{batch})");
}

/// Collects benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
