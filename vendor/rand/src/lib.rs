//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! re-implements exactly the slice of the `rand 0.8` API the workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — small,
//! fast, and statistically fine for workload generation and property
//! tests. It is *not* cryptographically secure, and its streams differ
//! from upstream `rand`'s `StdRng` (ChaCha12); anything relying on the
//! exact values produced for a given seed would see different corpora,
//! but the workspace only relies on determinism for a fixed seed.

#![forbid(unsafe_code)]

/// Random number generators, mirroring `rand::rngs`.
pub mod rngs {
    /// Deterministic generator: xoshiro256** with SplitMix64 seeding.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_u64_seed(seed: u64) -> Self {
            // SplitMix64 expansion, the seeding scheme xoshiro recommends.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }

        pub(crate) fn next(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.next()
        }
    }
}

/// The raw source of randomness; everything else derives from `next_u64`.
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding, mirroring `rand::SeedableRng` for the one constructor used.
pub trait SeedableRng: Sized {
    /// Builds a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng::from_u64_seed(seed)
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types uniformly samplable within a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` or `[lo, hi]` per `inclusive`.
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "empty range in gen_range");
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, _inclusive: bool, rng: &mut R) -> Self {
        assert!(lo < hi, "empty range in gen_range");
        let unit = <f64 as Standard>::sample(rng);
        lo + unit * (hi - lo)
    }
}

/// Ranges samplable by [`Rng::gen_range`]. A single blanket impl per
/// range shape (as upstream has) keeps type inference working when the
/// output type is pinned by the call site rather than the literal.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start() <= self.end(), "empty range in gen_range");
        T::sample_range(*self.start(), *self.end(), true, rng)
    }
}

/// Extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        <f64 as Standard>::sample(self) < p
    }
}

impl<T: RngCore> Rng for T {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-4..10);
            assert!((-4..10).contains(&v));
            let u = rng.gen_range(0..=5usize);
            assert!(u <= 5);
            let f = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
